#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/generators.h"
#include "graph/io.h"

namespace rlcut {
namespace {

Graph MakeDiamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  return std::move(b).Build();
}

TEST(GraphBuilderTest, CountsAndDegrees) {
  Graph g = MakeDiamond();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_EQ(g.OutDegree(3), 0u);
  EXPECT_EQ(g.InDegree(3), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
}

TEST(GraphBuilderTest, NeighborsMatch) {
  Graph g = MakeDiamond();
  auto out0 = g.OutNeighbors(0);
  std::set<VertexId> out_set(out0.begin(), out0.end());
  EXPECT_EQ(out_set, (std::set<VertexId>{1, 2}));
  auto in3 = g.InNeighbors(3);
  std::set<VertexId> in_set(in3.begin(), in3.end());
  EXPECT_EQ(in_set, (std::set<VertexId>{1, 2}));
}

TEST(GraphBuilderTest, EdgeIdsConsistentBetweenCsrs) {
  Graph g = MakeDiamond();
  // Every in-edge id of v must resolve to an edge whose target is v and
  // whose source matches the parallel InNeighbors entry.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto sources = g.InNeighbors(v);
    auto ids = g.InEdgeIds(v);
    ASSERT_EQ(sources.size(), ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(g.EdgeTarget(ids[i]), v);
      EXPECT_EQ(g.EdgeSource(ids[i]), sources[i]);
    }
  }
}

TEST(GraphBuilderTest, OutEdgeIdRangeMatchesNeighbors) {
  Graph g = MakeDiamond();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto neighbors = g.OutNeighbors(v);
    const EdgeId begin = g.OutEdgeBegin(v);
    const EdgeId end = g.OutEdgeEnd(v);
    ASSERT_EQ(end - begin, neighbors.size());
    for (EdgeId e = begin; e < end; ++e) {
      EXPECT_EQ(g.EdgeSource(e), v);
      EXPECT_EQ(g.EdgeTarget(e), neighbors[e - begin]);
    }
  }
}

TEST(GraphBuilderTest, GetEdgeRoundTrip) {
  Graph g = MakeDiamond();
  std::multiset<std::pair<VertexId, VertexId>> edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge edge = g.GetEdge(e);
    edges.insert({edge.src, edge.dst});
  }
  EXPECT_EQ(edges.count({0, 1}), 1u);
  EXPECT_EQ(edges.count({2, 3}), 1u);
}

TEST(GraphBuilderTest, DeduplicateAndDropSelfLoops) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  b.AddEdge(1, 1);
  b.AddEdge(2, 0);
  b.DeduplicateAndDropSelfLoops();
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(1), 0u);
}

TEST(GraphBuilderTest, MultigraphPreservedWithoutDedup) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(1), 2u);
}

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder b(5);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.MaxInDegree(), 0u);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_TRUE(g.OutNeighbors(v).empty());
    EXPECT_TRUE(g.InNeighbors(v).empty());
  }
}

TEST(GraphTest, MaxInDegree) {
  Graph g = MakeDiamond();
  EXPECT_EQ(g.MaxInDegree(), 2u);
}

TEST(GraphTest, RingStructure) {
  Graph g = GenerateRing(5, 2);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 10u);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.OutDegree(v), 2u);
    EXPECT_EQ(g.InDegree(v), 2u);
  }
}

TEST(GraphTest, GridStructure) {
  Graph g = GenerateGrid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  // Right edges: 3 rows x 3, down edges: 2 x 4.
  EXPECT_EQ(g.num_edges(), 17u);
  EXPECT_EQ(g.OutDegree(0), 2u);   // corner
  EXPECT_EQ(g.OutDegree(11), 0u);  // opposite corner
}

TEST(GraphIoTest, SaveLoadRoundTrip) {
  Graph g = GenerateRing(16, 3);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rlcut_io_test.el").string();
  ASSERT_TRUE(SaveEdgeListFile(g, path).ok());
  Result<Graph> loaded = LoadEdgeListFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(loaded->OutDegree(v), g.OutDegree(v));
    EXPECT_EQ(loaded->InDegree(v), g.InDegree(v));
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileIsIoError) {
  Result<Graph> r = LoadEdgeListFile("/nonexistent/path/graph.el");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, MalformedLineIsIoError) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rlcut_io_bad.el").string();
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("# comment\n0 1\nnot numbers\n", f);
    fclose(f);
  }
  Result<Graph> r = LoadEdgeListFile(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(GraphIoTest, CommentsSkipped) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rlcut_io_c.el").string();
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("# header\n0 1\n1 2\n", f);
    fclose(f);
  }
  Result<Graph> r = LoadEdgeListFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_edges(), 2u);
  EXPECT_EQ(r->num_vertices(), 3u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rlcut
