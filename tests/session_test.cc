// PartitioningSession lifecycle: open -> apply -> reoptimize ->
// publish, exact migration-budget enforcement, checkpoint/resume
// continuation, and the unified Result<>/Status error paths.

#include "partition/session.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/partitioner.h"
#include "cloud/topology.h"
#include "graph/geo.h"
#include "graph/stream.h"
#include "graph/temporal.h"
#include "gtest/gtest.h"
#include "partition/migration.h"
#include "rlcut/session.h"

namespace rlcut {
namespace {

constexpr VertexId kVertices = 96;
constexpr uint64_t kEdges = 480;
constexpr uint64_t kBaseEdges = 240;
constexpr int kDcs = 4;

// Shared streaming problem: a diurnal temporal stream whose prefix is
// the batch problem and whose suffix arrives as micro-batches.
class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : topology_(MakeUniformTopology(kDcs)) {
    TemporalStreamOptions stream;
    stream.num_vertices = kVertices;
    stream.num_edges = kEdges;
    stream.horizon_seconds = 3600;
    stream.seed = 3;
    temporal_ = std::make_unique<TemporalGraph>(GenerateDiurnalStream(stream));
    base_graph_ = temporal_->Prefix(kBaseEdges);
    GeoLocatorOptions geo;
    geo.num_dcs = kDcs;
    locations_ = AssignGeoLocations(base_graph_, geo);
    sizes_ = AssignInputSizes(base_graph_);

    ctx_.graph = &base_graph_;
    ctx_.topology = &topology_;
    ctx_.locations = &locations_;
    ctx_.input_sizes = &sizes_;
    ctx_.theta = PartitionState::AutoTheta(base_graph_);
    ctx_.budget = 50.0;
    ctx_.seed = 7;
  }

  RLCutSessionOptions SessionOpts() const {
    RLCutSessionOptions options;
    options.initial.max_steps = 3;
    options.initial.batch_size = 16;
    options.initial.num_threads = 1;
    options.initial.seed = 7;
    options.initial.agent_visit_budget =
        static_cast<int64_t>(kVertices) * 4;
    options.incremental = options.initial;
    options.incremental.max_steps = 2;
    return options;
  }

  // Splits the stream's suffix into `count` micro-batches through the
  // reorder buffer, so the batches carry real watermarks.
  std::vector<MicroBatch> SuffixBatches(int count) const {
    const std::vector<TimedEdge>& all = temporal_->edges();
    StreamBuffer buffer;
    for (uint64_t i = kBaseEdges; i < all.size(); ++i) {
      buffer.Push(StreamEvent{all[i], i});
    }
    const SimTime start = all[kBaseEdges].time;
    const SimTime end = all.back().time + SimTime(1);
    std::vector<MicroBatch> batches;
    for (int b = 1; b <= count; ++b) {
      const SimTime watermark = SimTime::Micros(
          start.micros() +
          (end.micros() - start.micros()) * b / count);
      batches.push_back(buffer.Cut(watermark));
    }
    return batches;
  }

  Topology topology_;
  std::unique_ptr<TemporalGraph> temporal_;
  Graph base_graph_;
  std::vector<DcId> locations_;
  std::vector<double> sizes_;
  PartitionerContext ctx_;
};

TEST_F(SessionTest, RegistryOpensSessionsByMethodName) {
  auto spinner = OpenPartitioningSession("Spinner", ctx_);
  ASSERT_TRUE(spinner.ok()) << spinner.status().ToString();
  EXPECT_EQ((*spinner)->method(), "Spinner");

  auto rl = OpenPartitioningSession("RLCut", ctx_);
  ASSERT_TRUE(rl.ok()) << rl.status().ToString();
  EXPECT_EQ((*rl)->method(), "RLCut");
  EXPECT_NE(dynamic_cast<RLCutSession*>(rl->get()), nullptr);

  auto missing = OpenPartitioningSession("Nope", ctx_);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(SessionTest, BatchRunIsTheDegenerateSession) {
  // Partitioner::Run == open, one unlimited re-optimization, take.
  auto run = MakeGinger()->Run(ctx_);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  auto session = OneShotSession::Open(MakeGinger(), ctx_);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto reopt = (*session)->MaybeReoptimize(MigrationBudget::Unlimited());
  ASSERT_TRUE(reopt.ok()) << reopt.status().ToString();
  auto taken = (*session)->TakeOutput();
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();

  EXPECT_EQ(run->state.masters(), taken->state.masters());
}

TEST_F(SessionTest, BorrowedSessionCannotIngest) {
  auto ginger = MakeGinger();
  OneShotSession session(ginger.get(), ctx_);
  const auto batches = SuffixBatches(2);
  auto applied = session.ApplyDelta(batches[0]);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SessionTest, OwnedOneShotSessionIngestsAndRepartitions) {
  auto session = OneShotSession::Open(MakeGinger(), ctx_);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // Publish before the first re-optimization: nothing to publish yet.
  auto early = (*session)->PublishPlan();
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(
      (*session)->MaybeReoptimize(MigrationBudget::Unlimited()).ok());
  auto v1 = (*session)->PublishPlan();
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(v1->version, 1u);

  uint64_t ingested = 0;
  for (const MicroBatch& batch : SuffixBatches(2)) {
    auto applied = (*session)->ApplyDelta(batch);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    ingested += applied->edges_applied;
  }
  EXPECT_EQ(ingested, kEdges - kBaseEdges);

  ASSERT_TRUE(
      (*session)->MaybeReoptimize(MigrationBudget::Unlimited()).ok());
  auto v2 = (*session)->PublishPlan();
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(v2->version, 2u);
  ASSERT_NE((*session)->live_state(), nullptr);
  EXPECT_EQ((*session)->live_state()->graph().num_edges(), kEdges);
}

TEST_F(SessionTest, LifecycleOrderAndInputValidation) {
  auto opened = RLCutSession::Open(ctx_, SessionOpts());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  RLCutSession& session = **opened;

  // Publish before any successful re-optimization.
  auto early = session.PublishPlan();
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), StatusCode::kFailedPrecondition);

  // Out-of-range endpoint.
  MicroBatch bad;
  bad.watermark = SimTime(10);
  bad.edges.push_back(TimedEdge{{kVertices, 0}, SimTime(5)});
  auto out_of_range = session.ApplyDelta(bad);
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kOutOfRange);

  // A good batch, then a watermark moving backwards.
  const auto batches = SuffixBatches(2);
  ASSERT_TRUE(session.ApplyDelta(batches[1]).ok());
  auto backwards = session.ApplyDelta(batches[0]);
  ASSERT_FALSE(backwards.ok());
  EXPECT_EQ(backwards.status().code(), StatusCode::kInvalidArgument);

  auto reopt = session.MaybeReoptimize(MigrationBudget::Unlimited());
  ASSERT_TRUE(reopt.ok()) << reopt.status().ToString();
  EXPECT_TRUE(reopt->reoptimized);
  auto plan = session.PublishPlan();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->version, 1u);

  // Nothing new since the last pass: a clean no-op, not an error.
  auto idle = session.MaybeReoptimize(MigrationBudget::Unlimited());
  ASSERT_TRUE(idle.ok());
  EXPECT_FALSE(idle->reoptimized);
}

TEST_F(SessionTest, MigrationBudgetRespectedExactly) {
  auto opened = RLCutSession::Open(ctx_, SessionOpts());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  RLCutSession& session = **opened;

  // Zero budget: the published plan must equal the initial locations.
  MigrationBudget frozen;
  frozen.max_vertices = 0;
  ASSERT_TRUE(session.MaybeReoptimize(frozen).ok());
  auto v1 = session.PublishPlan();
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(v1->masters, locations_);
  EXPECT_EQ(v1->migration.vertices_moved, 0u);

  // Tight budget: at most 5 masters may differ from the last publish,
  // re-checked independently with PlanMigration.
  const auto batches = SuffixBatches(2);
  for (const MicroBatch& batch : batches) {
    ASSERT_TRUE(session.ApplyDelta(batch).ok());
  }
  MigrationBudget tight;
  tight.max_vertices = 5;
  ASSERT_TRUE(session.MaybeReoptimize(tight).ok());
  auto v2 = session.PublishPlan();
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_LE(v2->migration.vertices_moved, 5u);
  const MigrationSummary recheck =
      PlanMigration(v1->masters, v2->masters,
                    AssignInputSizes(temporal_->Prefix(kEdges)), topology_);
  EXPECT_LE(recheck.vertices_moved, 5u);
  EXPECT_EQ(recheck.vertices_moved, v2->migration.vertices_moved);
}

TEST_F(SessionTest, CheckpointResumeContinuesBitIdentically) {
  const std::string path =
      ::testing::TempDir() + "/session_resume.ckpt";
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());

  const auto batches = SuffixBatches(4);
  MigrationBudget budget;
  budget.max_vertices = 12;

  auto opened = RLCutSession::Open(ctx_, SessionOpts());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  RLCutSession& live = **opened;
  ASSERT_TRUE(live.ApplyDelta(batches[0]).ok());
  ASSERT_TRUE(live.ApplyDelta(batches[1]).ok());
  ASSERT_TRUE(live.MaybeReoptimize(budget).ok());
  ASSERT_TRUE(live.PublishPlan().ok());

  // Checkpoint mid-stream, then let both sessions finish the stream.
  ASSERT_TRUE(live.SaveCheckpoint(path).ok());
  auto restored = RLCutSession::Restore(path, SessionOpts());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->watermark(), live.watermark());
  EXPECT_EQ((*restored)->num_edges(), live.num_edges());
  EXPECT_EQ((*restored)->version(), live.version());

  std::vector<std::vector<DcId>> published_live;
  std::vector<std::vector<DcId>> published_restored;
  for (RLCutSession* session : {&live, restored->get()}) {
    auto& published =
        session == &live ? published_live : published_restored;
    for (size_t b = 2; b < batches.size(); ++b) {
      ASSERT_TRUE(session->ApplyDelta(batches[b]).ok());
      ASSERT_TRUE(session->MaybeReoptimize(budget).ok());
      auto plan = session->PublishPlan();
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      published.push_back(plan->masters);
    }
  }
  ASSERT_EQ(published_live.size(), published_restored.size());
  for (size_t i = 0; i < published_live.size(); ++i) {
    EXPECT_EQ(published_live[i], published_restored[i]) << "publish " << i;
  }
  EXPECT_EQ(live.version(), (*restored)->version());
}

TEST_F(SessionTest, RestoreFallsBackToRotatedCheckpoint) {
  const std::string path =
      ::testing::TempDir() + "/session_fallback.ckpt";
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());

  auto opened = RLCutSession::Open(ctx_, SessionOpts());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  RLCutSession& session = **opened;
  ASSERT_TRUE(session.MaybeReoptimize(MigrationBudget::Unlimited()).ok());
  ASSERT_TRUE(session.PublishPlan().ok());
  ASSERT_TRUE(session.SaveCheckpoint(path).ok());

  const auto batches = SuffixBatches(2);
  ASSERT_TRUE(session.ApplyDelta(batches[0]).ok());
  ASSERT_TRUE(session.MaybeReoptimize(MigrationBudget::Unlimited()).ok());
  ASSERT_TRUE(session.PublishPlan().ok());
  // Second save rotates the first to `path`.prev ...
  ASSERT_TRUE(session.SaveCheckpoint(path).ok());
  // ... and then the primary gets corrupted.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not a checkpoint";
  }
  auto restored = RLCutSession::Restore(path, SessionOpts());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->version(), 1u);  // the rotated (older) state

  // With both slots corrupt, Restore reports the failure.
  {
    std::ofstream out(path + ".prev",
                      std::ios::binary | std::ios::trunc);
    out << "also not a checkpoint";
  }
  auto failed = RLCutSession::Restore(path, SessionOpts());
  ASSERT_FALSE(failed.ok());
}

}  // namespace
}  // namespace rlcut
