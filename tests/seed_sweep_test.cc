// Seed-parameterized property sweep over the core evaluator: for each
// seed, a fresh graph, topology subset, location assignment and op
// sequence — so every instantiation explores a different region of the
// state space. The invariants checked are the ones every other module
// depends on: incremental bookkeeping == from-scratch rebuild, and
// what-if == apply-and-measure.

#include <gtest/gtest.h>

#include "cloud/topology.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "partition/partition_state.h"

namespace rlcut {
namespace {

class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweepTest, MixedOpsPreserveEvaluatorInvariants) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  // Randomized instance shape.
  const int num_dcs = 2 + static_cast<int>(rng.UniformInt(7));  // 2..8
  const VertexId n = 128 + static_cast<VertexId>(rng.UniformInt(256));
  PowerLawOptions opt;
  opt.num_vertices = n;
  opt.num_edges = n * (4 + rng.UniformInt(8));
  opt.exponent = 1.6 + rng.UniformDouble();
  opt.seed = seed;
  Graph graph = GeneratePowerLaw(opt);
  Topology topology = MakeEc2Topology(num_dcs, Heterogeneity::kMedium);

  std::vector<DcId> locations(graph.num_vertices());
  for (auto& l : locations) l = static_cast<DcId>(rng.UniformInt(num_dcs));
  std::vector<double> sizes = AssignInputSizes(graph);

  PartitionConfig config;
  config.model = rng.Bernoulli(0.5) ? ComputeModel::kHybridCut
                                    : ComputeModel::kEdgeCut;
  config.theta = 2 + static_cast<uint32_t>(rng.UniformInt(32));
  config.workload = rng.Bernoulli(0.5) ? Workload::PageRank()
                                       : Workload::SubgraphIsomorphism();
  PartitionState state(&graph, &topology, &locations, &sizes, config);
  state.ResetDerived(locations);

  EvalScratch scratch;
  for (int op = 0; op < 150; ++op) {
    const VertexId v =
        static_cast<VertexId>(rng.UniformInt(graph.num_vertices()));
    const DcId to = static_cast<DcId>(rng.UniformInt(num_dcs));
    // What-if must equal apply-and-measure.
    const Objective predicted = state.EvaluateMove(v, to, &scratch);
    state.MoveMaster(v, to);
    const Objective actual = state.CurrentObjective();
    ASSERT_NEAR(predicted.transfer_seconds, actual.transfer_seconds,
                1e-12 + 1e-9 * actual.transfer_seconds)
        << "seed=" << seed << " op=" << op;
    ASSERT_NEAR(predicted.cost_dollars, actual.cost_dollars,
                1e-12 + 1e-9 * std::abs(actual.cost_dollars));
    ASSERT_NEAR(predicted.smooth_seconds, actual.smooth_seconds,
                1e-12 + 1e-9 * actual.smooth_seconds);
  }
  EXPECT_TRUE(state.CheckInvariants()) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u, 707u, 808u));

}  // namespace
}  // namespace rlcut
