#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "cloud/topology.h"
#include "common/random.h"
#include "graph/generators.h"
#include "partition/plan_io.h"

namespace rlcut {
namespace {

class PlanIoTest : public ::testing::Test {
 protected:
  PlanIoTest() : topology_(MakeEc2Topology(4, Heterogeneity::kMedium)) {
    PowerLawOptions opt;
    opt.num_vertices = 256;
    opt.num_edges = 2048;
    graph_ = GeneratePowerLaw(opt);
    locations_.assign(graph_.num_vertices(), 0);
    Rng rng(3);
    for (auto& l : locations_) l = static_cast<DcId>(rng.UniformInt(4));
    sizes_.assign(graph_.num_vertices(), 1e6);
  }

  PartitionState MakeState(ComputeModel model) {
    PartitionConfig config;
    config.model = model;
    config.theta = 8;
    PartitionState state(&graph_, &topology_, &locations_, &sizes_, config);
    return state;
  }

  std::string TempPath(const std::string& name) {
    return (std::filesystem::temp_directory_path() / name).string();
  }

  Graph graph_;
  Topology topology_;
  std::vector<DcId> locations_;
  std::vector<double> sizes_;
};

TEST_F(PlanIoTest, DerivedPlanRoundTripsThroughDisk) {
  PartitionState state = MakeState(ComputeModel::kHybridCut);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    state.MoveMaster(static_cast<VertexId>(rng.UniformInt(256)),
                     static_cast<DcId>(rng.UniformInt(4)));
  }
  const Objective before = state.CurrentObjective();
  const PartitionPlan plan = ExtractPlan(state);
  EXPECT_TRUE(plan.edge_dcs.empty());

  const std::string path = TempPath("rlcut_plan_derived.txt");
  ASSERT_TRUE(SavePlan(plan, path).ok());
  Result<PartitionPlan> loaded = LoadPlan(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  PartitionState restored = MakeState(ComputeModel::kHybridCut);
  ASSERT_TRUE(ApplyPlan(*loaded, &restored).ok());
  const Objective after = restored.CurrentObjective();
  EXPECT_DOUBLE_EQ(before.transfer_seconds, after.transfer_seconds);
  EXPECT_DOUBLE_EQ(before.cost_dollars, after.cost_dollars);
  EXPECT_EQ(state.masters(), restored.masters());
  std::remove(path.c_str());
}

TEST_F(PlanIoTest, ExplicitPlanRoundTripsThroughDisk) {
  PartitionState state = MakeState(ComputeModel::kVertexCut);
  state.ResetUnplaced(locations_);
  Rng rng(11);
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    state.PlaceEdge(e, static_cast<DcId>(rng.UniformInt(4)));
  }
  const PartitionPlan plan = ExtractPlan(state);
  EXPECT_EQ(plan.edge_dcs.size(), graph_.num_edges());

  const std::string path = TempPath("rlcut_plan_explicit.txt");
  ASSERT_TRUE(SavePlan(plan, path).ok());
  Result<PartitionPlan> loaded = LoadPlan(path);
  ASSERT_TRUE(loaded.ok());

  PartitionState restored = MakeState(ComputeModel::kVertexCut);
  ASSERT_TRUE(ApplyPlan(*loaded, &restored).ok());
  EXPECT_DOUBLE_EQ(state.CurrentObjective().transfer_seconds,
                   restored.CurrentObjective().transfer_seconds);
  EXPECT_TRUE(restored.CheckInvariants());
  std::remove(path.c_str());
}

TEST_F(PlanIoTest, ApplyRejectsModelMismatch) {
  PartitionState hybrid = MakeState(ComputeModel::kHybridCut);
  PartitionPlan plan = ExtractPlan(hybrid);
  PartitionState edge_cut = MakeState(ComputeModel::kEdgeCut);
  EXPECT_EQ(ApplyPlan(plan, &edge_cut).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PlanIoTest, ApplyRejectsWrongVertexCount) {
  PartitionState state = MakeState(ComputeModel::kHybridCut);
  PartitionPlan plan = ExtractPlan(state);
  plan.masters.pop_back();
  EXPECT_EQ(ApplyPlan(plan, &state).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PlanIoTest, ApplyRejectsUnknownDc) {
  PartitionState state = MakeState(ComputeModel::kHybridCut);
  PartitionPlan plan = ExtractPlan(state);
  plan.masters[0] = 99;
  EXPECT_EQ(ApplyPlan(plan, &state).code(), StatusCode::kOutOfRange);
}

TEST_F(PlanIoTest, LoadRejectsGarbage) {
  const std::string path = TempPath("rlcut_plan_bad.txt");
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("not a plan\n", f);
    fclose(f);
  }
  EXPECT_FALSE(LoadPlan(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadPlan("/nonexistent/plan").ok());
}

}  // namespace
}  // namespace rlcut
