#include <cmath>

#include <gtest/gtest.h>

#include "baselines/partitioner.h"
#include "rlcut/automaton.h"
#include "cloud/topology.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "rlcut/rlcut_partitioner.h"
#include "rlcut/trainer.h"

namespace rlcut {
namespace {

class TrainerExtraTest : public ::testing::Test {
 protected:
  TrainerExtraTest() : topology_(MakeEc2Topology(8, Heterogeneity::kMedium)) {
    PowerLawOptions opt;
    opt.num_vertices = 512;
    opt.num_edges = 4096;
    graph_ = GeneratePowerLaw(opt);
    locations_ = AssignGeoLocations(graph_, GeoLocatorOptions{});
    sizes_ = AssignInputSizes(graph_);
    ctx_.graph = &graph_;
    ctx_.topology = &topology_;
    ctx_.locations = &locations_;
    ctx_.input_sizes = &sizes_;
    ctx_.workload = Workload::PageRank();
    ctx_.theta = PartitionState::AutoTheta(graph_);
    ctx_.budget = 1.0;
    ctx_.seed = 7;
  }

  RLCutOptions BaseOptions() const {
    RLCutOptions opt;
    opt.max_steps = 4;
    opt.batch_size = 16;
    opt.num_threads = 1;
    opt.budget = ctx_.budget;
    opt.seed = 11;
    return opt;
  }

  Graph graph_;
  Topology topology_;
  std::vector<DcId> locations_;
  std::vector<double> sizes_;
  PartitionerContext ctx_;
};

TEST_F(TrainerExtraTest, AgentVisitBudgetIsDeterministic) {
  RLCutOptions opt = BaseOptions();
  opt.agent_visit_budget = 600;
  RLCutRunOutput a = RunRLCut(ctx_, opt);
  RLCutRunOutput b = RunRLCut(ctx_, opt);
  EXPECT_EQ(a.state.masters(), b.state.masters());
  EXPECT_EQ(a.train.steps.size(), b.train.steps.size());
  for (size_t i = 0; i < a.train.steps.size(); ++i) {
    EXPECT_EQ(a.train.steps[i].num_agents, b.train.steps[i].num_agents);
    EXPECT_EQ(a.train.steps[i].migrations, b.train.steps[i].migrations);
  }
}

TEST_F(TrainerExtraTest, AgentVisitBudgetIsRespected) {
  RLCutOptions opt = BaseOptions();
  opt.max_steps = 10;
  opt.agent_visit_budget = 300;
  opt.min_sample_rate = 0.0001;
  RLCutRunOutput out = RunRLCut(ctx_, opt);
  uint64_t total_visits = 0;
  for (const StepStats& s : out.train.steps) total_visits += s.num_agents;
  // Per-step rounding can exceed by at most one agent per step.
  EXPECT_LE(total_visits,
            static_cast<uint64_t>(opt.agent_visit_budget) +
                out.train.steps.size());
}

TEST_F(TrainerExtraTest, VisitBudgetSpreadsOverSteps) {
  RLCutOptions opt = BaseOptions();
  opt.max_steps = 5;
  opt.agent_visit_budget = 500;
  RLCutRunOutput out = RunRLCut(ctx_, opt);
  // 500 visits over 5 steps of a 512-vertex graph: ~100 agents per step.
  ASSERT_GE(out.train.steps.size(), 2u);
  for (const StepStats& s : out.train.steps) {
    EXPECT_NEAR(static_cast<double>(s.num_agents), 100.0, 30.0);
  }
}

TEST_F(TrainerExtraTest, PaperExactModeStillImproves) {
  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = ctx_.theta;
  config.workload = ctx_.workload;
  PartitionState state(&graph_, &topology_, &locations_, &sizes_, config);
  state.ResetDerived(locations_);
  const double before = state.CurrentObjective().transfer_seconds;

  RLCutOptions opt = BaseOptions();
  opt.smooth_weight = 0;
  opt.hub_slot_fraction = 0;
  opt.budget_pressure = false;
  RLCutTrainer(opt).Train(&state);
  EXPECT_LT(state.CurrentObjective().transfer_seconds, before);
  EXPECT_TRUE(state.CheckInvariants());
}

TEST_F(TrainerExtraTest, HubSlotsIncludeHighestApplyVolumeAgents) {
  // With hub slots and a tiny sampling rate, at least one hub (max
  // apply volume) vertex must be trained; without, none are.
  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = ctx_.theta;
  config.workload = Workload::SubgraphIsomorphism();  // degree-weighted
  PartitionState state(&graph_, &topology_, &locations_, &sizes_, config);
  state.ResetDerived(locations_);

  VertexId hub = 0;
  for (VertexId v = 1; v < graph_.num_vertices(); ++v) {
    if (state.ApplyBytes(v) > state.ApplyBytes(hub)) hub = v;
  }

  RLCutOptions opt = BaseOptions();
  opt.fixed_sample_rate = 0.02;
  opt.hub_slot_fraction = 0.5;
  // The hub's master may move only if the hub was trained (or if it is a
  // neighbor of a trained vertex, which cannot change masters). Run and
  // check the hub's automaton was exercised via a master move *or* that
  // the run completes with invariants intact; the strong check is the
  // sampled-agent count below.
  RLCutTrainer trainer(opt);
  TrainResult result = trainer.Train(&state);
  ASSERT_FALSE(result.steps.empty());
  const uint64_t agents_per_step = result.steps[0].num_agents;
  EXPECT_GE(agents_per_step, 10u);  // 2% of 512
  EXPECT_TRUE(state.CheckInvariants());
}

TEST_F(TrainerExtraTest, BudgetPressureReducesSpend) {
  RLCutOptions with = BaseOptions();
  with.budget_pressure = true;
  RLCutOptions without = BaseOptions();
  without.budget_pressure = false;
  // Tight-ish budget where pressure matters.
  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = ctx_.theta;
  config.workload = ctx_.workload;
  PartitionState probe(&graph_, &topology_, &locations_, &sizes_, config);
  probe.ResetDerived(locations_);
  double centralized = 0;
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    centralized += topology_.UploadCost(locations_[v], sizes_[v]);
  }
  with.budget = without.budget = 0.2 * centralized;
  PartitionerContext ctx = ctx_;
  ctx.budget = with.budget;

  RLCutRunOutput a = RunRLCut(ctx, with);
  RLCutRunOutput b = RunRLCut(ctx, without);
  EXPECT_LT(a.state.CurrentObjective().cost_dollars,
            b.state.CurrentObjective().cost_dollars * 1.001);
}

TEST_F(TrainerExtraTest, ExternalPoolPersistsAcrossTrainCalls) {
  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = ctx_.theta;
  config.workload = ctx_.workload;
  PartitionState state(&graph_, &topology_, &locations_, &sizes_, config);
  state.ResetDerived(locations_);

  RLCutOptions opt = BaseOptions();
  AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(), opt);
  RLCutTrainer trainer(opt);
  std::vector<VertexId> eligible = {1, 2, 3, 4, 5, 6, 7, 8};
  trainer.Train(&state, eligible, &pool);

  // After training, some trained agent's distribution left uniform and
  // its selection counts are populated...
  bool any_learned = false;
  for (VertexId v : eligible) {
    for (DcId r = 0; r < topology_.num_dcs(); ++r) {
      if (pool.SelectionCount(v, r) > 0) any_learned = true;
    }
  }
  EXPECT_TRUE(any_learned);
  // ...and a second Train call resumes from that pool without resetting
  // it (counts only grow).
  uint32_t before = 0;
  for (VertexId v : eligible) {
    for (DcId r = 0; r < topology_.num_dcs(); ++r) {
      before += pool.SelectionCount(v, r);
    }
  }
  trainer.Train(&state, eligible, &pool);
  uint32_t after = 0;
  for (VertexId v : eligible) {
    for (DcId r = 0; r < topology_.num_dcs(); ++r) {
      after += pool.SelectionCount(v, r);
    }
  }
  EXPECT_GT(after, before);
}

TEST_F(TrainerExtraTest, AdaptiveSamplerSurvivesEmptyResumeHistory) {
  // A session can legitimately arrive at step >= 1 with no step history
  // (e.g. a checkpoint written before any step completed, or history
  // trimmed by a caller). Eq. 14 divides by history.size(); the sampler
  // must fall back to the initial rate instead of producing NaN.
  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = ctx_.theta;
  config.workload = ctx_.workload;
  PartitionState state(&graph_, &topology_, &locations_, &sizes_, config);
  state.ResetDerived(locations_);

  RLCutOptions opt = BaseOptions();
  opt.t_opt_seconds = 10.0;  // adaptive sampling on (Eq. 14)
  opt.max_steps = 3;
  AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(), opt);
  std::vector<VertexId> eligible(graph_.num_vertices());
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) eligible[v] = v;

  TrainerSession session;
  session.started = true;
  session.next_step = 1;  // mid-run cursor...
  session.history.clear();  // ...but no telemetry to average over

  RLCutTrainer trainer(opt);
  const TrainResult result =
      trainer.Train(&state, eligible, &pool, &session);
  ASSERT_FALSE(result.steps.empty());
  for (const StepStats& s : result.steps) {
    EXPECT_TRUE(std::isfinite(s.sample_rate));
    EXPECT_GT(s.sample_rate, 0);
    EXPECT_LE(s.sample_rate, 1.0);
  }
  EXPECT_TRUE(state.CheckInvariants());
}

TEST_F(TrainerExtraTest, SmoothSurrogateTrackedInObjective) {
  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = ctx_.theta;
  config.workload = ctx_.workload;
  PartitionState state(&graph_, &topology_, &locations_, &sizes_, config);
  state.ResetDerived(locations_);
  const Objective obj = state.CurrentObjective();
  // The smooth sum is at least the bottleneck max and at most M times it.
  EXPECT_GE(obj.smooth_seconds, obj.transfer_seconds - 1e-15);
  EXPECT_LE(obj.smooth_seconds,
            obj.transfer_seconds * topology_.num_dcs() + 1e-15);
}

}  // namespace
}  // namespace rlcut
