#include <cstdlib>

#include <gtest/gtest.h>

#include "check/differential_oracle.h"
#include "check/invariants.h"

namespace rlcut {
namespace check {
namespace {

// Restores RLCUT_DEBUG_INVARIANTS on scope exit so tests cannot leak
// configuration into each other.
class ScopedInvariantsEnv {
 public:
  explicit ScopedInvariantsEnv(const char* value) {
    const char* old = std::getenv("RLCUT_DEBUG_INVARIANTS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv("RLCUT_DEBUG_INVARIANTS", value, 1);
    } else {
      ::unsetenv("RLCUT_DEBUG_INVARIANTS");
    }
  }
  ~ScopedInvariantsEnv() {
    if (had_old_) {
      ::setenv("RLCUT_DEBUG_INVARIANTS", old_.c_str(), 1);
    } else {
      ::unsetenv("RLCUT_DEBUG_INVARIANTS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(DifferentialOracleTest, AllPresetsAndModelsAgreeBitExactly) {
  OracleOptions options;
  // 27 sequences cover every (graph kind, topology preset, model)
  // combination at least once, including the outage schedule preset.
  options.num_sequences = 27;
  options.moves_per_sequence = 48;
  options.seed = 5;
  const OracleReport report = RunDifferentialOracle(options);
  for (const std::string& f : report.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.sequences, 27u);
  EXPECT_EQ(report.moves, 27u * 48u);
  EXPECT_GE(report.cold_recomputes, report.sequences);
  EXPECT_GE(report.rollbacks, 1u);
  EXPECT_GE(report.topology_updates, 1u);
  EXPECT_GE(report.invariant_checks, report.sequences);
  EXPECT_GE(report.legacy_evals, 1u);
}

TEST(DifferentialOracleTest, SoaVsLegacyLaneCoversAThousandMoves) {
  // The SoA bookkeeping rewrite's dedicated lane: >= 1k randomized
  // moves, each committed state compared bit-exactly against the legacy
  // array-of-structs reference evaluator (plus the scalar-vs-SIMD lane
  // on every batched evaluation when the host has AVX2).
  OracleOptions options;
  options.num_sequences = 18;
  options.moves_per_sequence = 60;
  options.seed = 33;
  const OracleReport report = RunDifferentialOracle(options);
  for (const std::string& f : report.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.moves, 1000u);
  // Every committed mutation runs the legacy comparison; SetMaster and
  // PlaceEdge moves each count once, MoveMaster moves once as well.
  EXPECT_GE(report.legacy_evals, 1000u);
}

TEST(DifferentialOracleTest, DerivedModelsOnlyAlsoPass) {
  OracleOptions options;
  options.num_sequences = 18;
  options.moves_per_sequence = 32;
  options.include_vertex_cut = false;
  options.seed = 11;
  const OracleReport report = RunDifferentialOracle(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(DifferentialOracleTest, DeterministicForAFixedSeed) {
  OracleOptions options;
  options.num_sequences = 6;
  options.moves_per_sequence = 24;
  options.seed = 21;
  const OracleReport a = RunDifferentialOracle(options);
  const OracleReport b = RunDifferentialOracle(options);
  EXPECT_EQ(a.Summary(), b.Summary());
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  EXPECT_EQ(a.cold_recomputes, b.cold_recomputes);
}

TEST(DifferentialOracleTest, SummaryMentionsCounts) {
  OracleOptions options;
  options.num_sequences = 1;
  options.moves_per_sequence = 8;
  const OracleReport report = RunDifferentialOracle(options);
  EXPECT_NE(report.Summary().find("1 sequences"), std::string::npos);
  EXPECT_NE(report.Summary().find("0 failures"), std::string::npos);
}

TEST(InvariantsEnvTest, DisabledWhenUnsetEmptyOrZero) {
  {
    ScopedInvariantsEnv env(nullptr);
    EXPECT_FALSE(DebugInvariantsEnabled());
    EXPECT_FALSE(ShouldCheckInvariantsAtStep(0));
  }
  {
    ScopedInvariantsEnv env("");
    EXPECT_FALSE(DebugInvariantsEnabled());
  }
  {
    ScopedInvariantsEnv env("0");
    EXPECT_FALSE(DebugInvariantsEnabled());
    EXPECT_FALSE(ShouldCheckInvariantsAtStep(0));
  }
}

TEST(InvariantsEnvTest, EnabledEveryStepForOneOrNonNumeric) {
  {
    ScopedInvariantsEnv env("1");
    EXPECT_TRUE(DebugInvariantsEnabled());
    EXPECT_EQ(DebugInvariantsInterval(), 1);
    EXPECT_TRUE(ShouldCheckInvariantsAtStep(0));
    EXPECT_TRUE(ShouldCheckInvariantsAtStep(7));
  }
  {
    ScopedInvariantsEnv env("on");
    EXPECT_TRUE(DebugInvariantsEnabled());
    EXPECT_EQ(DebugInvariantsInterval(), 1);
    EXPECT_TRUE(ShouldCheckInvariantsAtStep(3));
  }
}

TEST(InvariantsEnvTest, NumericValueSamplesEveryNthStep) {
  ScopedInvariantsEnv env("4");
  EXPECT_TRUE(DebugInvariantsEnabled());
  EXPECT_EQ(DebugInvariantsInterval(), 4);
  EXPECT_TRUE(ShouldCheckInvariantsAtStep(0));
  EXPECT_FALSE(ShouldCheckInvariantsAtStep(1));
  EXPECT_FALSE(ShouldCheckInvariantsAtStep(3));
  EXPECT_TRUE(ShouldCheckInvariantsAtStep(8));
}

}  // namespace
}  // namespace check
}  // namespace rlcut
