#include <string>

#include <gtest/gtest.h>

#include "check/fuzz.h"
#include "common/status.h"

namespace rlcut {
namespace check {
namespace {

const CorpusCase& FindCase(const std::vector<CorpusCase>& corpus,
                           const std::string& name) {
  for (const CorpusCase& c : corpus) {
    if (c.name == name) return c;
  }
  ADD_FAILURE() << "corpus case not found: " << name;
  static const CorpusCase kEmpty;
  return kEmpty;
}

class CorpusReplayTest : public ::testing::TestWithParam<LoaderKind> {};

TEST_P(CorpusReplayTest, EveryCaseMatchesItsExpectation) {
  const FuzzReport report = ReplayCorpus(GetParam());
  for (const std::string& f : report.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(report.ok()) << report.Summary();
  // Each corpus mixes accepted and rejected inputs.
  EXPECT_GE(report.accepted, 2u);
  EXPECT_GE(report.rejected, 5u);
}

TEST_P(CorpusReplayTest, DeterministicFuzzRunIsClean) {
  const FuzzReport report = RunLoaderFuzz(GetParam(), 150, 7);
  for (const std::string& f : report.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.cases, 150u);
}

INSTANTIATE_TEST_SUITE_P(AllLoaders, CorpusReplayTest,
                         ::testing::Values(LoaderKind::kCheckpoint,
                                           LoaderKind::kPlan,
                                           LoaderKind::kNetSchedule,
                                           LoaderKind::kRlgGraph),
                         [](const auto& info) {
                           switch (info.param) {
                             case LoaderKind::kCheckpoint:
                               return std::string("Checkpoint");
                             case LoaderKind::kPlan:
                               return std::string("Plan");
                             case LoaderKind::kRlgGraph:
                               return std::string("RlgGraph");
                             default:
                               return std::string("NetSchedule");
                           }
                         });

// ---- Named allocation-bomb regressions -------------------------------
//
// Each of these inputs declares an element count vastly larger than the
// file that carries it. Pre-hardening, the loaders resized straight to
// the declared count (a multi-GB to multi-PB allocation — OOM or a
// bad_alloc crash); they must instead fail with a clean IoError before
// allocating.

TEST(CheckpointAdversarialTest, HugeHistoryCountRejectedCleanly) {
  const auto corpus = BuildSeedCorpus(LoaderKind::kCheckpoint);
  const CorpusCase& c = FindCase(corpus, "huge-history-count");
  const Status s = RunLoaderOnBytes(LoaderKind::kCheckpoint, c.bytes);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("history count"), std::string::npos)
      << s.message();
}

TEST(CheckpointAdversarialTest, HugeRngCountRejectedCleanly) {
  const auto corpus = BuildSeedCorpus(LoaderKind::kCheckpoint);
  const CorpusCase& c = FindCase(corpus, "huge-rng-count");
  const Status s = RunLoaderOnBytes(LoaderKind::kCheckpoint, c.bytes);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("rng state count"), std::string::npos)
      << s.message();
}

TEST(CheckpointAdversarialTest, HugePayloadSizeRejectedCleanly) {
  const auto corpus = BuildSeedCorpus(LoaderKind::kCheckpoint);
  const CorpusCase& c = FindCase(corpus, "huge-payload-size");
  const Status s = RunLoaderOnBytes(LoaderKind::kCheckpoint, c.bytes);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(CheckpointAdversarialTest, AllZeroRngStateRejectedCleanly) {
  // Checksum-valid file whose rng state is all zeros: accepting it
  // would CHECK-abort later inside Rng::SetState on trainer resume.
  const auto corpus = BuildSeedCorpus(LoaderKind::kCheckpoint);
  const CorpusCase& c = FindCase(corpus, "zero-rng-state");
  const Status s = RunLoaderOnBytes(LoaderKind::kCheckpoint, c.bytes);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("all-zero rng state"), std::string::npos)
      << s.message();
}

TEST(PlanAdversarialTest, HugeCountsRejectedCleanly) {
  const auto corpus = BuildSeedCorpus(LoaderKind::kPlan);
  for (const char* name : {"huge-masters-count", "huge-edges-count"}) {
    const CorpusCase& c = FindCase(corpus, name);
    const Status s = RunLoaderOnBytes(LoaderKind::kPlan, c.bytes);
    ASSERT_FALSE(s.ok()) << name;
    EXPECT_EQ(s.code(), StatusCode::kIoError) << name;
    EXPECT_NE(s.message().find("exceeds file size"), std::string::npos)
        << name << ": " << s.message();
  }
}

}  // namespace
}  // namespace check
}  // namespace rlcut
