#include <memory>

#include <gtest/gtest.h>

#include "baselines/extra_partitioners.h"
#include "cloud/topology.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "partition/metrics.h"

namespace rlcut {
namespace {

class ExtraBaselinesTest : public ::testing::Test {
 protected:
  ExtraBaselinesTest()
      : topology_(MakeEc2Topology(8, Heterogeneity::kMedium)) {
    PowerLawOptions opt;
    opt.num_vertices = 1024;
    opt.num_edges = 8192;
    graph_ = GeneratePowerLaw(opt);
    locations_ = AssignGeoLocations(graph_, GeoLocatorOptions{});
    sizes_ = AssignInputSizes(graph_);

    ctx_.graph = &graph_;
    ctx_.topology = &topology_;
    ctx_.locations = &locations_;
    ctx_.input_sizes = &sizes_;
    ctx_.workload = Workload::PageRank();
    ctx_.theta = PartitionState::AutoTheta(graph_);
    ctx_.budget = 100.0;
    ctx_.seed = 5;
  }

  Graph graph_;
  Topology topology_;
  std::vector<DcId> locations_;
  std::vector<double> sizes_;
  PartitionerContext ctx_;
};

TEST_F(ExtraBaselinesTest, AllExtrasProduceValidStates) {
  for (auto factory : {&MakeOblivious, &MakeLdg}) {
    auto p = factory();
    SCOPED_TRACE(p->name());
    PartitionOutput out = p->RunOrDie(ctx_);
    EXPECT_TRUE(out.state.CheckInvariants());
    EXPECT_GE(out.state.ReplicationFactor(), 1.0);
  }
  PartitionOutput hdrf = MakeHdrf()->RunOrDie(ctx_);
  EXPECT_TRUE(hdrf.state.CheckInvariants());
}

TEST_F(ExtraBaselinesTest, ObliviousBeatsRandomOnReplication) {
  // PowerGraph's whole point: greedy placement cuts the replication
  // factor relative to random edge assignment.
  PartitionOutput random = MakePartitionerByName("RandPG")->RunOrDie(ctx_);
  PartitionOutput oblivious = MakeOblivious()->RunOrDie(ctx_);
  EXPECT_LT(oblivious.state.ReplicationFactor(),
            random.state.ReplicationFactor());
}

TEST_F(ExtraBaselinesTest, HdrfBeatsRandomOnReplication) {
  PartitionOutput random = MakePartitionerByName("RandPG")->RunOrDie(ctx_);
  PartitionOutput hdrf = MakeHdrf()->RunOrDie(ctx_);
  EXPECT_LT(hdrf.state.ReplicationFactor(),
            random.state.ReplicationFactor());
}

TEST_F(ExtraBaselinesTest, HdrfKeepsEdgeBalance) {
  PartitionOutput hdrf = MakeHdrf()->RunOrDie(ctx_);
  const PartitionReport report = MakeReport(hdrf.state);
  EXPECT_LT(report.edge_balance, 1.6);
}

TEST_F(ExtraBaselinesTest, LdgBalancesMasters) {
  PartitionOutput ldg = MakeLdg()->RunOrDie(ctx_);
  const PartitionReport report = MakeReport(ldg.state);
  EXPECT_LT(report.master_balance, 1.2);
}

TEST_F(ExtraBaselinesTest, LdgLocalizesBetterThanHash) {
  PartitionOutput ldg = MakeLdg()->RunOrDie(ctx_);
  PartitionOutput hash_edge_cut = [&] {
    PartitionConfig config;
    config.model = ComputeModel::kEdgeCut;
    config.workload = ctx_.workload;
    PartitionState state(ctx_.graph, ctx_.topology, ctx_.locations,
                         ctx_.input_sizes, config);
    std::vector<DcId> masters(graph_.num_vertices());
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      masters[v] = static_cast<DcId>(HashU64(v) % 8);
    }
    state.ResetDerived(masters);
    return PartitionOutput(std::move(state), 0.0);
  }();
  EXPECT_LT(ldg.state.WanBytesPerIteration(),
            hash_edge_cut.state.WanBytesPerIteration());
}

TEST_F(ExtraBaselinesTest, LookupByNameCoversEverything) {
  for (const char* name :
       {"RandPG", "Geo-Cut", "HashPL", "Ginger", "Revolver", "Spinner",
        "Fennel", "Oblivious", "HDRF", "LDG"}) {
    auto p = MakePartitionerByName(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_EQ(p->name(), std::string(name));
  }
  EXPECT_EQ(MakePartitionerByName("Metis"), nullptr);
}

TEST_F(ExtraBaselinesTest, VertexCutExtrasUseVertexCutModel) {
  EXPECT_EQ(MakeOblivious()->model(), ComputeModel::kVertexCut);
  EXPECT_EQ(MakeHdrf()->model(), ComputeModel::kVertexCut);
  EXPECT_EQ(MakeLdg()->model(), ComputeModel::kEdgeCut);
}

}  // namespace
}  // namespace rlcut
