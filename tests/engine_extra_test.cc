#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "cloud/topology.h"
#include "common/random.h"
#include "engine/gas_engine.h"
#include "engine/reference.h"
#include "engine/vertex_program.h"
#include "graph/generators.h"
#include "graph/transform.h"

namespace rlcut {
namespace {

// ---- Graph transforms -----------------------------------------------------

TEST(TransformTest, SymmetrizeDoublesAndDedupes) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);  // reverse already present
  b.AddEdge(2, 3);
  Graph g = std::move(b).Build();
  Graph sym = Symmetrize(g);
  // {0<->1} dedupes to 2 directed edges, {2<->3} becomes 2.
  EXPECT_EQ(sym.num_edges(), 4u);
  EXPECT_EQ(sym.OutDegree(0), 1u);
  EXPECT_EQ(sym.InDegree(0), 1u);
  EXPECT_EQ(sym.OutDegree(3), 1u);
}

TEST(TransformTest, SymmetrizeDropsSelfLoops) {
  GraphBuilder b(2);
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  Graph sym = Symmetrize(std::move(b).Build());
  EXPECT_EQ(sym.num_edges(), 2u);  // 0->1 and 1->0
}

TEST(TransformTest, TransposeReversesEdges) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph t = Transpose(std::move(b).Build());
  EXPECT_EQ(t.OutDegree(1), 1u);
  EXPECT_EQ(t.OutNeighbors(1)[0], 0u);
  EXPECT_EQ(t.OutNeighbors(2)[0], 1u);
}

TEST(TransformTest, EdgePrefixSubgraph) {
  Graph g = GenerateRing(8, 1);
  Graph prefix = EdgePrefixSubgraph(g, 3);
  EXPECT_EQ(prefix.num_vertices(), 8u);
  EXPECT_EQ(prefix.num_edges(), 3u);
}

// ---- CC and weighted SSSP end to end ---------------------------------------

struct ExtraEngineFixture {
  explicit ExtraEngineFixture(Graph graph_in)
      : graph(std::move(graph_in)),
        topology(MakeEc2Topology(4, Heterogeneity::kMedium)) {
    locations.assign(graph.num_vertices(), 0);
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      locations[v] = static_cast<DcId>(v % 4);
    }
    sizes.assign(graph.num_vertices(), 1e6);
  }

  PartitionState ScatteredState(const Workload& workload) {
    PartitionConfig config;
    config.model = ComputeModel::kHybridCut;
    config.theta = 16;
    config.workload = workload;
    PartitionState state(&graph, &topology, &locations, &sizes, config);
    std::vector<DcId> masters(graph.num_vertices());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      masters[v] = static_cast<DcId>(HashU64(v) % 4);
    }
    state.ResetDerived(masters);
    return state;
  }

  Graph graph;
  Topology topology;
  std::vector<DcId> locations;
  std::vector<double> sizes;
};

TEST(ConnectedComponentsTest, MatchesUnionFindOnFragmentedGraph) {
  // Several disjoint rings plus isolated vertices.
  GraphBuilder b(32);
  for (VertexId v = 0; v < 8; ++v) b.AddEdge(v, (v + 1) % 8);
  for (VertexId v = 10; v < 14; ++v) b.AddEdge(v, v + 1);
  b.AddEdge(20, 21);
  Graph directed = std::move(b).Build();
  Graph sym = Symmetrize(directed);
  const std::vector<double> expected = ReferenceConnectedComponents(sym);

  ExtraEngineFixture fix(std::move(sym));
  auto program = MakeConnectedComponents();
  PartitionState state = fix.ScatteredState(program->TrafficModel());
  GasEngine engine(&state);
  const RunResult result = engine.Run(program.get());
  for (VertexId v = 0; v < fix.graph.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(result.values[v], expected[v]) << "vertex " << v;
  }
}

TEST(ConnectedComponentsTest, SingleComponentOnConnectedGraph) {
  Graph sym = Symmetrize(GenerateRing(64, 1));
  ExtraEngineFixture fix(std::move(sym));
  auto program = MakeConnectedComponents();
  PartitionState state = fix.ScatteredState(program->TrafficModel());
  GasEngine engine(&state);
  const RunResult result = engine.Run(program.get());
  for (double label : result.values) EXPECT_DOUBLE_EQ(label, 0.0);
}

TEST(ConnectedComponentsTest, CountsComponentsOnRandomGraph) {
  PowerLawOptions opt;
  opt.num_vertices = 512;
  opt.num_edges = 1024;  // sparse: many components
  Graph sym = Symmetrize(GeneratePowerLaw(opt));
  const std::vector<double> expected = ReferenceConnectedComponents(sym);
  std::set<double> expected_components(expected.begin(), expected.end());

  ExtraEngineFixture fix(std::move(sym));
  auto program = MakeConnectedComponents();
  PartitionState state = fix.ScatteredState(program->TrafficModel());
  GasEngine engine(&state);
  const RunResult result = engine.Run(program.get());
  std::set<double> got_components(result.values.begin(),
                                  result.values.end());
  EXPECT_EQ(got_components, expected_components);
  EXPECT_GT(got_components.size(), 1u);
}

TEST(WeightedSsspTest, MatchesDijkstra) {
  PowerLawOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 2048;
  Graph g = GeneratePowerLaw(opt);
  const VertexId source = 5;
  const uint32_t max_weight = 8;
  const std::vector<double> expected =
      ReferenceWeightedSssp(g, source, max_weight);

  ExtraEngineFixture fix(std::move(g));
  auto program = MakeWeightedSssp(source, max_weight);
  PartitionState state = fix.ScatteredState(program->TrafficModel());
  GasEngine engine(&state);
  const RunResult result = engine.Run(program.get());
  for (VertexId v = 0; v < fix.graph.num_vertices(); ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(result.values[v])) << "vertex " << v;
    } else {
      EXPECT_DOUBLE_EQ(result.values[v], expected[v]) << "vertex " << v;
    }
  }
}

TEST(WeightedSsspTest, WeightsDeterministicAndBounded) {
  for (uint32_t max_weight : {1u, 4u, 16u}) {
    for (VertexId u = 0; u < 20; ++u) {
      for (VertexId v = 0; v < 20; ++v) {
        const double w = WeightedSsspEdgeWeight(u, v, max_weight);
        EXPECT_EQ(w, WeightedSsspEdgeWeight(u, v, max_weight));
        EXPECT_GE(w, 1.0);
        EXPECT_LE(w, static_cast<double>(max_weight));
      }
    }
  }
}

TEST(WeightedSsspTest, UnitWeightReducesToBfs) {
  Graph g = GenerateRing(16, 1);
  const std::vector<double> bfs = ReferenceSssp(g, 0);
  ExtraEngineFixture fix(std::move(g));
  auto program = MakeWeightedSssp(0, /*max_weight=*/1);
  PartitionState state = fix.ScatteredState(program->TrafficModel());
  GasEngine engine(&state);
  const RunResult result = engine.Run(program.get());
  for (VertexId v = 0; v < 16; ++v) {
    EXPECT_DOUBLE_EQ(result.values[v], bfs[v]);
  }
}

}  // namespace
}  // namespace rlcut
