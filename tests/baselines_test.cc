#include <memory>

#include <gtest/gtest.h>

#include "baselines/partitioner.h"
#include "baselines/spinner.h"
#include "cloud/topology.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "partition/metrics.h"

namespace rlcut {
namespace {

// Shared small problem instance.
class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() : topology_(MakeEc2Topology(8, Heterogeneity::kMedium)) {
    PowerLawOptions opt;
    opt.num_vertices = 1024;
    opt.num_edges = 8192;
    graph_ = GeneratePowerLaw(opt);
    GeoLocatorOptions geo;
    locations_ = AssignGeoLocations(graph_, geo);
    sizes_ = AssignInputSizes(graph_);

    ctx_.graph = &graph_;
    ctx_.topology = &topology_;
    ctx_.locations = &locations_;
    ctx_.input_sizes = &sizes_;
    ctx_.workload = Workload::PageRank();
    ctx_.theta = PartitionState::AutoTheta(graph_);
    ctx_.budget = 100.0;
    ctx_.seed = 5;
  }

  static PartitionOutput RunByName(const std::string& name,
                                   const PartitionerContext& ctx) {
    return MakePartitionerByName(name, {}).value()->RunOrDie(ctx);
  }

  Graph graph_;
  Topology topology_;
  std::vector<DcId> locations_;
  std::vector<double> sizes_;
  PartitionerContext ctx_;
};

TEST_F(BaselinesTest, AllPaperBaselinesProduceValidStates) {
  for (auto& p : MakePaperBaselines()) {
    SCOPED_TRACE(p->name());
    PartitionOutput out = p->RunOrDie(ctx_);
    EXPECT_TRUE(out.state.CheckInvariants());
    EXPECT_GE(out.overhead_seconds, 0.0);
    const PartitionReport report = MakeReport(out.state);
    EXPECT_GE(report.replication_factor, 1.0);
    EXPECT_LE(report.replication_factor, 8.0);
  }
}

TEST_F(BaselinesTest, PaperBaselineNamesAndOrder) {
  auto baselines = MakePaperBaselines();
  ASSERT_EQ(baselines.size(), 6u);
  EXPECT_EQ(baselines[0]->name(), "RandPG");
  EXPECT_EQ(baselines[1]->name(), "Geo-Cut");
  EXPECT_EQ(baselines[2]->name(), "HashPL");
  EXPECT_EQ(baselines[3]->name(), "Ginger");
  EXPECT_EQ(baselines[4]->name(), "Revolver");
  EXPECT_EQ(baselines[5]->name(), "Spinner");
}

TEST_F(BaselinesTest, RandPgBalancesEdges) {
  PartitionOutput out = RunByName("RandPG", ctx_);
  const PartitionReport report = MakeReport(out.state);
  // Uniform random placement: max/mean edge load close to 1.
  EXPECT_LT(report.edge_balance, 1.2);
}

TEST_F(BaselinesTest, HashPlBalancesMasters) {
  PartitionOutput out = RunByName("HashPL", ctx_);
  const PartitionReport report = MakeReport(out.state);
  EXPECT_LT(report.master_balance, 1.2);
}

TEST_F(BaselinesTest, HybridHashBeatsVertexCutRandomOnWan) {
  // The Fig. 2 comparison: HashPL (hybrid) should use less WAN and have
  // lower replication than RandPG (vertex-cut) on a skewed graph.
  PartitionOutput rand_pg = RunByName("RandPG", ctx_);
  PartitionOutput hash_pl = RunByName("HashPL", ctx_);
  EXPECT_LT(hash_pl.state.ReplicationFactor(),
            rand_pg.state.ReplicationFactor());
  EXPECT_LT(hash_pl.state.WanBytesPerIteration(),
            rand_pg.state.WanBytesPerIteration());
}

TEST_F(BaselinesTest, GingerImprovesOnHashPl) {
  PartitionOutput hash_pl = RunByName("HashPL", ctx_);
  PartitionOutput ginger = RunByName("Ginger", ctx_);
  // Greedy locality placement cuts replication vs pure hashing.
  EXPECT_LT(ginger.state.ReplicationFactor(),
            hash_pl.state.ReplicationFactor());
}

TEST_F(BaselinesTest, GeoCutRespectsBudgetWhenFeasible) {
  PartitionerContext ctx = ctx_;
  ctx.budget = 50.0;
  PartitionOutput out = RunByName("Geo-Cut", ctx);
  const Objective obj = out.state.CurrentObjective();
  EXPECT_LE(obj.cost_dollars, ctx.budget * 1.01);
}

TEST_F(BaselinesTest, GeoCutBeatsRandomPlacementOnTransferTime) {
  PartitionOutput rand_pg = RunByName("RandPG", ctx_);
  PartitionOutput geo = RunByName("Geo-Cut", ctx_);
  EXPECT_LT(geo.state.CurrentObjective().transfer_seconds,
            rand_pg.state.CurrentObjective().transfer_seconds);
}

TEST_F(BaselinesTest, SpinnerImprovesLocalityOverHashInit) {
  // Spinner's LP must reduce WAN traffic relative to the hash start it
  // refines.
  PartitionerContext ctx = ctx_;
  PartitionOutput spinner = RunByName("Spinner", ctx);

  // Rebuild the hash starting point for comparison (same seed).
  PartitionConfig config;
  config.model = ComputeModel::kEdgeCut;
  config.theta = ctx.theta;
  config.workload = ctx.workload;
  PartitionState hash_state(ctx.graph, ctx.topology, ctx.locations,
                            ctx.input_sizes, config);
  std::vector<DcId> masters(graph_.num_vertices());
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    masters[v] = static_cast<DcId>(HashU64(v ^ ctx.seed) % 8);
  }
  hash_state.ResetDerived(masters);

  EXPECT_LT(spinner.state.WanBytesPerIteration(),
            hash_state.WanBytesPerIteration());
}

TEST_F(BaselinesTest, SpinnerKeepsRoughEdgeBalance) {
  PartitionOutput out = RunByName("Spinner", ctx_);
  const PartitionReport report = MakeReport(out.state);
  SpinnerOptions defaults;
  EXPECT_LT(report.edge_balance, defaults.balance_slack * 8.0);
}

TEST_F(BaselinesTest, SpinnerIncrementalRefinementOnlyTouchesNeighborhood) {
  // Refining from a tiny seed set must not rewrite the whole layout.
  PartitionConfig config;
  config.model = ComputeModel::kEdgeCut;
  config.workload = ctx_.workload;
  PartitionState state(ctx_.graph, ctx_.topology, ctx_.locations,
                       ctx_.input_sizes, config);
  std::vector<DcId> masters(graph_.num_vertices());
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    masters[v] = static_cast<DcId>(HashU64(v) % 8);
  }
  state.ResetDerived(masters);
  const std::vector<DcId> before = state.masters();

  Rng rng(9);
  SpinnerOptions opt;
  opt.max_iterations = 2;
  SpinnerCore core(opt);
  core.Refine(&state, {0, 1, 2, 3}, &rng);

  uint64_t moved = 0;
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    if (state.masters()[v] != before[v]) ++moved;
  }
  EXPECT_LT(moved, graph_.num_vertices() / 4);
  EXPECT_TRUE(state.CheckInvariants());
}

TEST_F(BaselinesTest, RevolverProducesLocalityAboveRandom) {
  PartitionOutput revolver = RunByName("Revolver", ctx_);
  // Compare against a random edge-cut assignment via WAN usage.
  PartitionConfig config;
  config.model = ComputeModel::kEdgeCut;
  config.workload = ctx_.workload;
  PartitionState random_state(ctx_.graph, ctx_.topology, ctx_.locations,
                              ctx_.input_sizes, config);
  Rng rng(123);
  std::vector<DcId> masters(graph_.num_vertices());
  for (auto& m : masters) m = static_cast<DcId>(rng.UniformInt(8));
  random_state.ResetDerived(masters);

  EXPECT_LT(revolver.state.WanBytesPerIteration(),
            random_state.WanBytesPerIteration());
}

TEST_F(BaselinesTest, FennelBalancesAndLocalizes) {
  PartitionOutput fennel = RunByName("Fennel", ctx_);
  const PartitionReport report = MakeReport(fennel.state);
  EXPECT_LT(report.master_balance, 2.0);
  EXPECT_TRUE(fennel.state.CheckInvariants());
}

TEST_F(BaselinesTest, DeterministicGivenSeed) {
  for (const char* name : {"HashPL", "Ginger", "RandPG"}) {
    auto a = RunByName(name, ctx_);
    auto b = RunByName(name, ctx_);
    EXPECT_EQ(a.state.masters(), b.state.masters());
  }
}

}  // namespace
}  // namespace rlcut
