#include <gtest/gtest.h>

#include "baselines/extra_partitioners.h"
#include "cloud/topology.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "partition/metrics.h"
#include "rlcut/rlcut_partitioner.h"

namespace rlcut {
namespace {

class OptimizerBaselinesTest : public ::testing::Test {
 protected:
  OptimizerBaselinesTest()
      : topology_(MakeEc2Topology(8, Heterogeneity::kMedium)) {
    PowerLawOptions opt;
    opt.num_vertices = 1024;
    opt.num_edges = 8192;
    graph_ = GeneratePowerLaw(opt);
    locations_ = AssignGeoLocations(graph_, GeoLocatorOptions{});
    sizes_ = AssignInputSizes(graph_);

    ctx_.graph = &graph_;
    ctx_.topology = &topology_;
    ctx_.locations = &locations_;
    ctx_.input_sizes = &sizes_;
    ctx_.workload = Workload::PageRank();
    ctx_.theta = PartitionState::AutoTheta(graph_);
    double centralized = 0;
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      centralized += topology_.UploadCost(locations_[v], sizes_[v]);
    }
    ctx_.budget = 0.4 * centralized;
    ctx_.seed = 5;
  }

  Graph graph_;
  Topology topology_;
  std::vector<DcId> locations_;
  std::vector<double> sizes_;
  PartitionerContext ctx_;
};

// ---- Multilevel -----------------------------------------------------------

TEST_F(OptimizerBaselinesTest, MultilevelProducesValidState) {
  PartitionOutput out = MakeMultilevel()->RunOrDie(ctx_);
  EXPECT_TRUE(out.state.CheckInvariants());
  EXPECT_GE(out.state.ReplicationFactor(), 1.0);
}

TEST_F(OptimizerBaselinesTest, MultilevelCutsWanVsHashEdgeCut) {
  PartitionOutput ml = MakeMultilevel()->RunOrDie(ctx_);
  // Hash edge-cut comparison point.
  PartitionConfig config;
  config.model = ComputeModel::kEdgeCut;
  config.workload = ctx_.workload;
  PartitionState hash_state(ctx_.graph, ctx_.topology, ctx_.locations,
                            ctx_.input_sizes, config);
  std::vector<DcId> masters(graph_.num_vertices());
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    masters[v] = static_cast<DcId>(HashU64(v) % 8);
  }
  hash_state.ResetDerived(masters);
  // A structureless Chung-Lu graph has near-worst-case min cuts, so the
  // margin is modest — but multilevel must still beat hashing.
  EXPECT_LT(ml.state.WanBytesPerIteration(),
            0.9 * hash_state.WanBytesPerIteration());
}

TEST_F(OptimizerBaselinesTest, MultilevelFindsStructuredCuts) {
  // On a 32x32 grid the optimal 8-way cut is tiny; a correct multilevel
  // pipeline must find a cut far below hashing's ~(M-1)/M.
  Graph grid = GenerateGrid(32, 32);
  std::vector<DcId> locations(grid.num_vertices(), 0);
  std::vector<double> sizes(grid.num_vertices(), 1e6);
  PartitionerContext ctx = ctx_;
  ctx.graph = &grid;
  ctx.locations = &locations;
  ctx.input_sizes = &sizes;

  PartitionOutput ml = MakeMultilevel()->RunOrDie(ctx);
  auto cut_fraction = [&](const PartitionState& state) {
    uint64_t cut = 0;
    for (EdgeId e = 0; e < grid.num_edges(); ++e) {
      const Edge edge = grid.GetEdge(e);
      if (state.master(edge.src) != state.master(edge.dst)) ++cut;
    }
    return static_cast<double>(cut) / grid.num_edges();
  };
  // Hash would cut ~87.5%; an 8-way grid partition can stay under ~15%.
  EXPECT_LT(cut_fraction(ml.state), 0.25);
  EXPECT_TRUE(ml.state.CheckInvariants());
}

TEST_F(OptimizerBaselinesTest, MultilevelKeepsBalance) {
  PartitionOutput ml = MakeMultilevel()->RunOrDie(ctx_);
  const PartitionReport report = MakeReport(ml.state);
  EXPECT_LT(report.master_balance, 1.5);
}

TEST_F(OptimizerBaselinesTest, MultilevelHandlesTinyAndDisconnected) {
  // A graph smaller than the coarsening target plus isolated vertices.
  GraphBuilder b(40);
  for (VertexId v = 0; v < 10; ++v) b.AddEdge(v, (v + 1) % 10);
  Graph g = std::move(b).Build();
  std::vector<DcId> locations(40, 0);
  std::vector<double> sizes(40, 1e6);
  PartitionerContext ctx = ctx_;
  ctx.graph = &g;
  ctx.locations = &locations;
  ctx.input_sizes = &sizes;
  PartitionOutput out = MakeMultilevel()->RunOrDie(ctx);
  EXPECT_TRUE(out.state.CheckInvariants());
}

TEST_F(OptimizerBaselinesTest, MultilevelBeatsLdgOnLocality) {
  // The multilevel pipeline should localize at least as well as a
  // single-pass streaming heuristic.
  PartitionOutput ml = MakeMultilevel()->RunOrDie(ctx_);
  PartitionOutput ldg = MakeLdg()->RunOrDie(ctx_);
  EXPECT_LT(ml.state.WanBytesPerIteration(),
            1.1 * ldg.state.WanBytesPerIteration());
}

// ---- Annealing -----------------------------------------------------------

TEST_F(OptimizerBaselinesTest, AnnealingImprovesOverNaturalStart) {
  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = ctx_.theta;
  config.workload = ctx_.workload;
  PartitionState natural(ctx_.graph, ctx_.topology, ctx_.locations,
                         ctx_.input_sizes, config);
  natural.ResetDerived(locations_);
  const double before = natural.CurrentObjective().transfer_seconds;

  AnnealingOptions opt;
  opt.moves_per_vertex = 10;
  PartitionOutput out = MakeAnnealing(opt)->RunOrDie(ctx_);
  EXPECT_LT(out.state.CurrentObjective().transfer_seconds, before);
  EXPECT_TRUE(out.state.CheckInvariants());
}

TEST_F(OptimizerBaselinesTest, AnnealingRespectsBudgetFromFeasibleStart) {
  AnnealingOptions opt;
  opt.moves_per_vertex = 10;
  PartitionOutput out = MakeAnnealing(opt)->RunOrDie(ctx_);
  EXPECT_LE(out.state.CurrentObjective().cost_dollars,
            ctx_.budget * 1.0001);
}

TEST_F(OptimizerBaselinesTest, AnnealingDeterministicBySeed) {
  AnnealingOptions opt;
  opt.moves_per_vertex = 5;
  PartitionOutput a = MakeAnnealing(opt)->RunOrDie(ctx_);
  PartitionOutput b = MakeAnnealing(opt)->RunOrDie(ctx_);
  EXPECT_EQ(a.state.masters(), b.state.masters());
}

TEST_F(OptimizerBaselinesTest, LookupIncludesNewOptimizers) {
  EXPECT_NE(MakePartitionerByName("Multilevel"), nullptr);
  EXPECT_NE(MakePartitionerByName("Annealing"), nullptr);
  EXPECT_NE(MakePartitionerByName("SingleAgentRL"), nullptr);
}

TEST_F(OptimizerBaselinesTest, SingleAgentRlProducesValidState) {
  SingleAgentRlOptions opt;
  opt.moves_per_vertex = 5;
  PartitionOutput out = MakeSingleAgentRl(opt)->RunOrDie(ctx_);
  EXPECT_TRUE(out.state.CheckInvariants());
  EXPECT_LE(out.state.CurrentObjective().cost_dollars,
            ctx_.budget * 1.0001);
}

TEST_F(OptimizerBaselinesTest, SingleAgentRlImprovesOverNatural) {
  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = ctx_.theta;
  config.workload = ctx_.workload;
  PartitionState natural(ctx_.graph, ctx_.topology, ctx_.locations,
                         ctx_.input_sizes, config);
  natural.ResetDerived(locations_);
  const double before = natural.CurrentObjective().transfer_seconds;

  SingleAgentRlOptions opt;
  opt.moves_per_vertex = 10;
  PartitionOutput out = MakeSingleAgentRl(opt)->RunOrDie(ctx_);
  EXPECT_LT(out.state.CurrentObjective().transfer_seconds, before);
}

TEST_F(OptimizerBaselinesTest, SingleAgentRlMoreMovesMoreQuality) {
  SingleAgentRlOptions small;
  small.moves_per_vertex = 1;
  SingleAgentRlOptions large;
  large.moves_per_vertex = 16;
  PartitionOutput a = MakeSingleAgentRl(small)->RunOrDie(ctx_);
  PartitionOutput b = MakeSingleAgentRl(large)->RunOrDie(ctx_);
  EXPECT_LT(b.state.CurrentObjective().transfer_seconds,
            a.state.CurrentObjective().transfer_seconds);
}

}  // namespace
}  // namespace rlcut
