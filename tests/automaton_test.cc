#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "rlcut/automaton.h"

namespace rlcut {
namespace {

RLCutOptions DefaultOptions() {
  RLCutOptions opt;
  opt.alpha = 0.1;
  opt.beta = 0.1;
  return opt;
}

double ProbSum(const AutomatonPool& pool, VertexId v, int num_dcs) {
  double sum = 0;
  for (DcId r = 0; r < num_dcs; ++r) sum += pool.Probability(v, r);
  return sum;
}

TEST(AutomatonTest, InitialDistributionUniform) {
  AutomatonPool pool(4, 5, DefaultOptions());
  for (VertexId v = 0; v < 4; ++v) {
    for (DcId r = 0; r < 5; ++r) {
      EXPECT_DOUBLE_EQ(pool.Probability(v, r), 0.2);
    }
  }
}

TEST(AutomatonTest, RewardUpdateMatchesEq12) {
  AutomatonPool pool(1, 4, DefaultOptions());
  pool.UpdateSignals(0, 2);
  // Eq. 12 with alpha=0.1 from uniform 0.25:
  // rewarded: 0.25 + 0.1*(1-0.25) = 0.325; others: 0.25*0.9 = 0.225.
  EXPECT_NEAR(pool.Probability(0, 2), 0.325, 1e-12);
  EXPECT_NEAR(pool.Probability(0, 0), 0.225, 1e-12);
  EXPECT_NEAR(pool.Probability(0, 1), 0.225, 1e-12);
  EXPECT_NEAR(pool.Probability(0, 3), 0.225, 1e-12);
  EXPECT_NEAR(ProbSum(pool, 0, 4), 1.0, 1e-12);
}

TEST(AutomatonTest, RepeatedRewardsConvergeToAction) {
  AutomatonPool pool(1, 4, DefaultOptions());
  for (int i = 0; i < 200; ++i) pool.UpdateSignals(0, 1);
  EXPECT_GT(pool.Probability(0, 1), 0.999);
  EXPECT_NEAR(ProbSum(pool, 0, 4), 1.0, 1e-9);
}

TEST(AutomatonTest, PenaltyUpdateKeepsDistributionNormalized) {
  RLCutOptions opt = DefaultOptions();
  opt.use_penalty = true;
  AutomatonPool pool(1, 4, opt);
  for (int i = 0; i < 50; ++i) pool.UpdateSignals(0, i % 4);
  EXPECT_NEAR(ProbSum(pool, 0, 4), 1.0, 1e-9);
  for (DcId r = 0; r < 4; ++r) {
    EXPECT_GT(pool.Probability(0, r), 0.0);
    EXPECT_LT(pool.Probability(0, r), 1.0);
  }
}

TEST(AutomatonTest, UcbTriesEveryActionFirst) {
  RLCutOptions opt = DefaultOptions();
  opt.selection = ActionSelection::kUcbScore;
  AutomatonPool pool(1, 4, opt);
  Rng rng(1);
  std::set<DcId> tried;
  for (int n = 1; n <= 4; ++n) {
    const DcId a = pool.SelectAction(0, n, &rng);
    EXPECT_EQ(tried.count(a), 0u) << "action tried twice before others";
    tried.insert(a);
    pool.RecordSelection(0, a, 0.5);
  }
  EXPECT_EQ(tried.size(), 4u);
}

TEST(AutomatonTest, UcbExploitsHighRewardAction) {
  RLCutOptions opt = DefaultOptions();
  opt.selection = ActionSelection::kUcbScore;
  opt.ucb_c = 0.1;  // weak exploration
  AutomatonPool pool(1, 3, opt);
  Rng rng(2);
  // Prime: action 1 pays 1.0, others pay 0.
  for (DcId r = 0; r < 3; ++r) {
    pool.RecordSelection(0, r, r == 1 ? 1.0 : 0.0);
  }
  int picked_1 = 0;
  for (int n = 4; n < 40; ++n) {
    const DcId a = pool.SelectAction(0, n, &rng);
    if (a == 1) ++picked_1;
    pool.RecordSelection(0, a, a == 1 ? 1.0 : 0.0);
  }
  EXPECT_GT(picked_1, 30);
}

TEST(AutomatonTest, BlendSelectionUsesProbabilities) {
  RLCutOptions opt = DefaultOptions();
  opt.selection = ActionSelection::kUcbBlend;
  opt.ucb_c = 0.01;
  AutomatonPool pool(1, 3, opt);
  Rng rng(3);
  // Equal observed rewards, but strong probability mass on action 2.
  for (DcId r = 0; r < 3; ++r) pool.RecordSelection(0, r, 0.5);
  for (int i = 0; i < 100; ++i) pool.UpdateSignals(0, 2);
  EXPECT_EQ(pool.SelectAction(0, 10, &rng), 2);
}

TEST(AutomatonTest, GreedySelectionFollowsProbability) {
  RLCutOptions opt = DefaultOptions();
  opt.selection = ActionSelection::kGreedy;
  AutomatonPool pool(1, 4, opt);
  Rng rng(4);
  for (int i = 0; i < 10; ++i) pool.UpdateSignals(0, 3);
  EXPECT_EQ(pool.SelectAction(0, 1, &rng), 3);
}

TEST(AutomatonTest, ProbabilitySelectionSamples) {
  RLCutOptions opt = DefaultOptions();
  opt.selection = ActionSelection::kProbability;
  AutomatonPool pool(1, 2, opt);
  Rng rng(5);
  for (int i = 0; i < 60; ++i) pool.UpdateSignals(0, 0);
  int zero = 0;
  for (int i = 0; i < 100; ++i) {
    if (pool.SelectAction(0, 1, &rng) == 0) ++zero;
  }
  EXPECT_GT(zero, 95);
}

TEST(AutomatonTest, RecordSelectionTracksMean) {
  AutomatonPool pool(1, 2, DefaultOptions());
  pool.RecordSelection(0, 0, 1.0);
  pool.RecordSelection(0, 0, 0.0);
  pool.RecordSelection(0, 0, 0.5);
  EXPECT_EQ(pool.SelectionCount(0, 0), 3u);
  EXPECT_EQ(pool.SelectionCount(0, 1), 0u);
}

TEST(AutomatonTest, AgentsAreIndependent) {
  AutomatonPool pool(3, 2, DefaultOptions());
  pool.UpdateSignals(1, 0);
  EXPECT_DOUBLE_EQ(pool.Probability(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(pool.Probability(2, 0), 0.5);
  EXPECT_GT(pool.Probability(1, 0), 0.5);
}

}  // namespace
}  // namespace rlcut
