#include <gtest/gtest.h>

#include "cloud/topology.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "graph/temporal.h"
#include "partition/migration.h"
#include "rlcut/dynamic.h"

namespace rlcut {
namespace {

TEST(MigrationTest, NoChangesNoTraffic) {
  Topology topo = MakeUniformTopology(4);
  std::vector<DcId> masters = {0, 1, 2, 3};
  std::vector<double> sizes(4, 1e9);
  const MigrationSummary s = PlanMigration(masters, masters, sizes, topo);
  EXPECT_EQ(s.vertices_moved, 0u);
  EXPECT_DOUBLE_EQ(s.bytes_moved, 0.0);
  EXPECT_DOUBLE_EQ(s.cost_dollars, 0.0);
  EXPECT_DOUBLE_EQ(s.transfer_seconds, 0.0);
}

TEST(MigrationTest, SingleMoveHandComputed) {
  // 1 GB from DC0 (uplink 0.5 GB/s, $0.10/GB) to DC1 (downlink 2.5).
  Topology topo = MakeUniformTopology(2, 0.5, 2.5, 0.10);
  std::vector<DcId> old_masters = {0, 1};
  std::vector<DcId> new_masters = {1, 1};
  std::vector<double> sizes = {1e9, 5e9};
  const MigrationSummary s =
      PlanMigration(old_masters, new_masters, sizes, topo);
  EXPECT_EQ(s.vertices_moved, 1u);
  EXPECT_DOUBLE_EQ(s.bytes_moved, 1e9);
  EXPECT_DOUBLE_EQ(s.cost_dollars, 0.10);
  // Uplink-bound: 1e9 / 0.5e9 = 2 s.
  EXPECT_DOUBLE_EQ(s.transfer_seconds, 2.0);
  EXPECT_DOUBLE_EQ(s.bytes_out[0], 1e9);
  EXPECT_DOUBLE_EQ(s.bytes_in[1], 1e9);
}

TEST(MigrationTest, ParallelMovesBoundedByBusiestLink) {
  Topology topo = MakeUniformTopology(4, 1.0, 1.0, 0.10);
  // Two vertices leave DC0 (2 GB out of a 1 GB/s uplink -> 2 s); one
  // enters DC1, one enters DC2 (1 GB each into 1 GB/s downlinks).
  std::vector<DcId> old_masters = {0, 0, 3};
  std::vector<DcId> new_masters = {1, 2, 3};
  std::vector<double> sizes = {1e9, 1e9, 1e9};
  const MigrationSummary s =
      PlanMigration(old_masters, new_masters, sizes, topo);
  EXPECT_EQ(s.vertices_moved, 2u);
  EXPECT_DOUBLE_EQ(s.transfer_seconds, 2.0);
}

TEST(MigrationTest, PlanOverloadMatchesVectors) {
  Topology topo = MakeUniformTopology(3);
  PartitionPlan old_plan;
  old_plan.masters = {0, 1, 2, 0};
  PartitionPlan new_plan = old_plan;
  new_plan.masters[0] = 2;
  std::vector<double> sizes(4, 2e9);
  const MigrationSummary a =
      PlanMigration(old_plan, new_plan, sizes, topo);
  const MigrationSummary b =
      PlanMigration(old_plan.masters, new_plan.masters, sizes, topo);
  EXPECT_EQ(a.vertices_moved, b.vertices_moved);
  EXPECT_DOUBLE_EQ(a.cost_dollars, b.cost_dollars);
}

TEST(MigrationTest, DynamicWindowsReportMigration) {
  PowerLawOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 2048;
  Graph full = GeneratePowerLaw(opt);
  Topology topo = MakeEc2Topology(4, Heterogeneity::kMedium);
  GraphSplit split = SplitEdges(full, 0.7, 3);
  std::vector<DcId> locations =
      [&] {
        GeoLocatorOptions geo;
        geo.num_dcs = 4;
        return AssignGeoLocations(full, geo);
      }();

  RLCutOptions initial;
  initial.max_steps = 3;
  RLCutOptions window = initial;
  window.t_opt_seconds = 0.5;
  RLCutDynamicDriver driver(&topo, Workload::PageRank(),
                            PartitionState::AutoTheta(full), 3, initial,
                            window);
  driver.Initialize(full.num_vertices(), split.initial_edges, locations);
  std::vector<Edge> w(split.remaining_edges.begin(),
                      split.remaining_edges.begin() + 200);
  const WindowResult result = driver.InsertWindow(w);
  // Consistency: bytes only move if vertices did, and the migration
  // clock is bounded by shipping everything over the slowest link.
  if (result.vertices_migrated == 0) {
    EXPECT_DOUBLE_EQ(result.migration_bytes, 0.0);
  } else {
    EXPECT_GT(result.migration_bytes, 0.0);
    EXPECT_GT(result.migration_seconds, 0.0);
  }
}

}  // namespace
}  // namespace rlcut
