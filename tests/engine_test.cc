#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "cloud/topology.h"
#include "common/random.h"
#include "engine/gas_engine.h"
#include "engine/reference.h"
#include "engine/vertex_program.h"
#include "graph/generators.h"

namespace rlcut {
namespace {

// The engine must compute exact results under ANY partitioning; tests
// sweep a few layouts and compare against single-machine references.
struct EngineFixture {
  explicit EngineFixture(Graph graph_in, int num_dcs = 4, uint64_t seed = 2)
      : graph(std::move(graph_in)),
        topology(MakeEc2Topology(num_dcs, Heterogeneity::kMedium)) {
    Rng rng(seed);
    locations.resize(graph.num_vertices());
    for (auto& l : locations) {
      l = static_cast<DcId>(rng.UniformInt(topology.num_dcs()));
    }
    sizes.assign(graph.num_vertices(), 1e6);
  }

  PartitionState MakeState(ComputeModel model, uint32_t theta,
                           const Workload& workload,
                           bool scatter_masters) {
    PartitionConfig config;
    config.model = model;
    config.theta = theta;
    config.workload = workload;
    PartitionState state(&graph, &topology, &locations, &sizes, config);
    if (scatter_masters) {
      std::vector<DcId> masters(graph.num_vertices());
      for (VertexId v = 0; v < graph.num_vertices(); ++v) {
        masters[v] =
            static_cast<DcId>(HashU64(v) % topology.num_dcs());
      }
      state.ResetDerived(masters);
    } else {
      state.ResetDerived(std::vector<DcId>(graph.num_vertices(), 0));
    }
    return state;
  }

  Graph graph;
  Topology topology;
  std::vector<DcId> locations;
  std::vector<double> sizes;
};

Graph SkewedGraph() {
  PowerLawOptions opt;
  opt.num_vertices = 512;
  opt.num_edges = 4096;
  return GeneratePowerLaw(opt);
}

TEST(GasEngineTest, PageRankMatchesReferenceAnyPartitioning) {
  EngineFixture fix(SkewedGraph());
  const std::vector<double> expected =
      ReferencePageRank(fix.graph, 10);
  for (bool scatter : {false, true}) {
    auto program = MakePageRank(10);
    PartitionState state =
        fix.MakeState(ComputeModel::kHybridCut,
                      PartitionState::AutoTheta(fix.graph),
                      program->TrafficModel(), scatter);
    GasEngine engine(&state);
    const RunResult result = engine.Run(program.get());
    ASSERT_EQ(result.values.size(), expected.size());
    for (VertexId v = 0; v < fix.graph.num_vertices(); ++v) {
      ASSERT_NEAR(result.values[v], expected[v], 1e-10)
          << "vertex " << v << " scatter=" << scatter;
    }
  }
}

TEST(GasEngineTest, PageRankMassApproximatelyConserved) {
  EngineFixture fix(GenerateRing(64, 2));  // no dangling vertices
  auto program = MakePageRank(20);
  PartitionState state = fix.MakeState(ComputeModel::kHybridCut, 100,
                                       program->TrafficModel(), true);
  GasEngine engine(&state);
  const RunResult result = engine.Run(program.get());
  double total = 0;
  for (double r : result.values) total += r;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GasEngineTest, SsspMatchesBfsAnyPartitioning) {
  EngineFixture fix(SkewedGraph());
  const VertexId source = 3;
  const std::vector<double> expected = ReferenceSssp(fix.graph, source);
  for (bool scatter : {false, true}) {
    auto program = MakeSssp(source);
    PartitionState state = fix.MakeState(ComputeModel::kHybridCut, 16,
                                         program->TrafficModel(), scatter);
    GasEngine engine(&state);
    const RunResult result = engine.Run(program.get());
    for (VertexId v = 0; v < fix.graph.num_vertices(); ++v) {
      if (std::isinf(expected[v])) {
        EXPECT_TRUE(std::isinf(result.values[v])) << "vertex " << v;
      } else {
        EXPECT_DOUBLE_EQ(result.values[v], expected[v]) << "vertex " << v;
      }
    }
  }
}

TEST(GasEngineTest, SsspOnRingHasLinearDistances) {
  EngineFixture fix(GenerateRing(32, 1));
  auto program = MakeSssp(0);
  PartitionState state = fix.MakeState(ComputeModel::kHybridCut, 100,
                                       program->TrafficModel(), true);
  GasEngine engine(&state);
  const RunResult result = engine.Run(program.get());
  for (VertexId v = 0; v < 32; ++v) {
    EXPECT_DOUBLE_EQ(result.values[v], static_cast<double>(v));
  }
}

TEST(GasEngineTest, SubgraphIsomorphismMatchesReference) {
  EngineFixture fix(SkewedGraph());
  const std::vector<int> pattern = {0, 1, 2, 1};
  const int num_labels = 4;
  const double expected =
      ReferencePathMatchCount(fix.graph, pattern, num_labels);
  auto program = MakeSubgraphIsomorphism(pattern, num_labels);
  PartitionState state = fix.MakeState(ComputeModel::kHybridCut, 16,
                                       program->TrafficModel(), true);
  GasEngine engine(&state);
  const RunResult result = engine.Run(program.get());
  double total = 0;
  for (double c : result.values) total += c;
  EXPECT_DOUBLE_EQ(total, expected);
  EXPECT_GT(expected, 0.0);
}

TEST(GasEngineTest, SubgraphIsomorphismTrianglePatternOnGrid) {
  // The grid is a DAG with labels 0..3; a hand-checkable small case.
  Graph g = GenerateGrid(2, 2);  // vertices 0,1,2,3; edges 0->1,0->2,1->3,2->3
  const std::vector<int> pattern = {0, 1, 3};
  const double expected = ReferencePathMatchCount(g, pattern, 4);
  // Paths with labels (0,1,3): 0->1->3 matches (labels 0,1,3). 0->2->3
  // has labels (0,2,3): no. So exactly 1.
  EXPECT_DOUBLE_EQ(expected, 1.0);

  EngineFixture fix(std::move(g), 2);
  auto program = MakeSubgraphIsomorphism(pattern, 4);
  PartitionState state = fix.MakeState(ComputeModel::kHybridCut, 100,
                                       program->TrafficModel(), true);
  GasEngine engine(&state);
  const RunResult result = engine.Run(program.get());
  double total = 0;
  for (double c : result.values) total += c;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(GasEngineTest, SingleDcProducesNoTraffic) {
  EngineFixture fix(SkewedGraph());
  auto program = MakePageRank(5);
  PartitionState state = fix.MakeState(ComputeModel::kHybridCut, 16,
                                       program->TrafficModel(),
                                       /*scatter_masters=*/false);
  GasEngine engine(&state);
  const RunResult result = engine.Run(program.get());
  EXPECT_DOUBLE_EQ(result.total_wan_bytes, 0.0);
  EXPECT_DOUBLE_EQ(result.total_transfer_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.total_upload_cost, 0.0);
}

TEST(GasEngineTest, ScatteredPartitioningProducesTraffic) {
  EngineFixture fix(SkewedGraph());
  auto program = MakePageRank(5);
  PartitionState state = fix.MakeState(ComputeModel::kHybridCut, 16,
                                       program->TrafficModel(), true);
  GasEngine engine(&state);
  const RunResult result = engine.Run(program.get());
  EXPECT_GT(result.total_wan_bytes, 0.0);
  EXPECT_GT(result.total_transfer_seconds, 0.0);
  EXPECT_EQ(result.iterations_executed, 5);
}

TEST(GasEngineTest, SsspTerminatesEarlyWhenFrontierDies) {
  EngineFixture fix(GenerateRing(16, 1));
  auto program = MakeSssp(0, /*max_rounds=*/64);
  PartitionState state = fix.MakeState(ComputeModel::kHybridCut, 100,
                                       program->TrafficModel(), true);
  GasEngine engine(&state);
  const RunResult result = engine.Run(program.get());
  // Ring of 16 converges in ~16 rounds, far below the 64 cap.
  EXPECT_LT(result.iterations_executed, 20);
}

TEST(GasEngineTest, BetterPartitioningLowersMeasuredTransferTime) {
  // Realized engine traffic must agree in direction with the Eq. 1
  // model: all-local beats scattered.
  EngineFixture fix(SkewedGraph());
  auto program = MakePageRank(5);
  PartitionState local = fix.MakeState(ComputeModel::kHybridCut, 16,
                                       program->TrafficModel(), false);
  PartitionState scattered = fix.MakeState(ComputeModel::kHybridCut, 16,
                                           program->TrafficModel(), true);
  GasEngine local_engine(&local);
  GasEngine scattered_engine(&scattered);
  auto p1 = MakePageRank(5);
  auto p2 = MakePageRank(5);
  EXPECT_LT(local_engine.Run(p1.get()).total_transfer_seconds,
            scattered_engine.Run(p2.get()).total_transfer_seconds);
}

// ---- Reference implementations sanity ------------------------------------

TEST(ReferenceTest, PageRankSumsToOneWithoutDangling) {
  Graph g = GenerateRing(10, 1);
  std::vector<double> pr = ReferencePageRank(g, 30);
  double total = 0;
  for (double r : pr) total += r;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Symmetric ring: uniform ranks.
  for (double r : pr) EXPECT_NEAR(r, 0.1, 1e-9);
}

TEST(ReferenceTest, SsspDiamond) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  Graph g = std::move(b).Build();
  std::vector<double> d = ReferenceSssp(g, 0);
  EXPECT_DOUBLE_EQ(d[0], 0);
  EXPECT_DOUBLE_EQ(d[1], 1);
  EXPECT_DOUBLE_EQ(d[2], 1);
  EXPECT_DOUBLE_EQ(d[3], 2);
}

TEST(ReferenceTest, PathCountOnChain) {
  // Chain 0->1->2->3 with labels = id % 4: pattern {0,1,2} matches the
  // single path 0->1->2.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  Graph g = std::move(b).Build();
  EXPECT_DOUBLE_EQ(ReferencePathMatchCount(g, {0, 1, 2}, 4), 1.0);
  EXPECT_DOUBLE_EQ(ReferencePathMatchCount(g, {1, 2, 3}, 4), 1.0);
  EXPECT_DOUBLE_EQ(ReferencePathMatchCount(g, {0, 2, 3}, 4), 0.0);
}

}  // namespace
}  // namespace rlcut
