#include <cmath>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "cloud/topology.h"
#include "common/random.h"
#include "graph/generators.h"
#include "partition/partition_state.h"

namespace rlcut {
namespace {

// Fixture bundling a graph + topology + locations + sizes + state.
struct Instance {
  Instance(Graph graph_in, Topology topo_in, PartitionConfig config,
           uint64_t seed = 3)
      : graph(std::move(graph_in)), topology(std::move(topo_in)) {
    Rng rng(seed);
    locations.resize(graph.num_vertices());
    for (auto& l : locations) {
      l = static_cast<DcId>(rng.UniformInt(topology.num_dcs()));
    }
    sizes.assign(graph.num_vertices(), 1e6);  // 1 MB per vertex
    state = std::make_unique<PartitionState>(&graph, &topology, &locations,
                                             &sizes, config);
  }

  Graph graph;
  Topology topology;
  std::vector<DcId> locations;
  std::vector<double> sizes;
  std::unique_ptr<PartitionState> state;
};

PartitionConfig HybridConfig(uint32_t theta = 100) {
  PartitionConfig c;
  c.model = ComputeModel::kHybridCut;
  c.theta = theta;
  c.workload = Workload::PageRank(10);
  return c;
}

// ---- Hand-computed low-degree example ----------------------------------

TEST(PartitionStateTest, AllLocalMeansNoTraffic) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Instance inst(std::move(b).Build(), MakeUniformTopology(2, 0.5, 2.5, 0.1),
                HybridConfig());
  inst.state->ResetDerived({0, 0});
  EXPECT_DOUBLE_EQ(inst.state->TransferSecondsPerIteration(), 0.0);
  EXPECT_DOUBLE_EQ(inst.state->WanBytesPerIteration(), 0.0);
  EXPECT_DOUBLE_EQ(inst.state->RuntimeCostPerIteration(), 0.0);
  EXPECT_DOUBLE_EQ(inst.state->ReplicationFactor(), 1.0);
}

TEST(PartitionStateTest, LowDegreeSplitMatchesHandComputation) {
  // Edge 0 -> 1, both low-degree; master(0)=DC0, master(1)=DC1.
  // Low-cut puts the edge at DC1, so vertex 0 gains a mirror at DC1.
  // Apply stage: DC0 uploads 8 bytes, DC1 downloads 8 bytes.
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Instance inst(std::move(b).Build(), MakeUniformTopology(2, 0.5, 2.5, 0.1),
                HybridConfig());
  inst.state->ResetDerived({0, 1});

  EXPECT_EQ(inst.state->edge_dc(0), 1);
  EXPECT_EQ(inst.state->MirrorCount(0), 1);
  EXPECT_EQ(inst.state->MirrorCount(1), 0);
  EXPECT_DOUBLE_EQ(inst.state->ReplicationFactor(), 1.5);

  const double uplink_seconds = 8.0 / (0.5 * 1e9);
  const double downlink_seconds = 8.0 / (2.5 * 1e9);
  EXPECT_DOUBLE_EQ(inst.state->TransferSecondsPerIteration(),
                   std::max(uplink_seconds, downlink_seconds));
  // Runtime cost: 8 bytes uploaded from DC0 at $0.1/GB.
  EXPECT_DOUBLE_EQ(inst.state->RuntimeCostPerIteration(), 8e-9 * 0.1);
  EXPECT_DOUBLE_EQ(inst.state->WanBytesPerIteration(), 8.0);
}

TEST(PartitionStateTest, HighDegreeSplitHasGatherAndApply) {
  // theta=1 makes vertex 1 high-degree. High-cut: edge 0->1 placed at
  // master(0)=DC0; vertex 1 gets a gather mirror at DC0.
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Instance inst(std::move(b).Build(), MakeUniformTopology(2, 0.5, 2.5, 0.1),
                HybridConfig(/*theta=*/1));
  inst.state->ResetDerived({0, 1});

  EXPECT_TRUE(inst.state->is_high_degree(1));
  EXPECT_EQ(inst.state->edge_dc(0), 0);
  EXPECT_EQ(inst.state->MirrorCount(1), 1);

  const double up = 0.5 * 1e9;
  const double down = 2.5 * 1e9;
  // Gather: DC0 uploads 8B, DC1 downloads 8B. Apply: DC1 uploads 8B,
  // DC0 downloads 8B. Stages are additive (global barrier).
  const double t_gather = std::max(8.0 / up, 8.0 / down);
  const double t_apply = std::max(8.0 / up, 8.0 / down);
  EXPECT_DOUBLE_EQ(inst.state->TransferSecondsPerIteration(),
                   t_gather + t_apply);
  EXPECT_DOUBLE_EQ(inst.state->WanBytesPerIteration(), 16.0);
}

TEST(PartitionStateTest, MoveCostChargedAtHomePrice) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Topology topo({{"A", 0.5, 2.5, 0.10}, {"B", 0.5, 2.5, 0.20}});
  PartitionConfig config = HybridConfig();
  Graph graph = std::move(b).Build();
  std::vector<DcId> locations = {0, 1};
  std::vector<double> sizes = {1e9, 2e9};
  PartitionState state(&graph, &topo, &locations, &sizes, config);

  state.ResetDerived({0, 1});  // natural: no movement
  EXPECT_DOUBLE_EQ(state.MoveCost(), 0.0);
  state.MoveMaster(1, 0);  // vertex 1 (2 GB) leaves home DC B ($0.2/GB)
  EXPECT_DOUBLE_EQ(state.MoveCost(), 0.4);
  state.MoveMaster(1, 1);  // back home
  EXPECT_DOUBLE_EQ(state.MoveCost(), 0.0);
}

TEST(PartitionStateTest, TotalObjectiveScalesWithActivity) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  PartitionConfig config = HybridConfig();
  config.workload = Workload::PageRank(5);  // activity sum = 5
  Instance inst(std::move(b).Build(), MakeUniformTopology(2, 0.5, 2.5, 0.1),
                config);
  inst.state->ResetDerived({0, 1});
  const Objective obj = inst.state->CurrentObjective();
  EXPECT_DOUBLE_EQ(obj.transfer_seconds,
                   5.0 * inst.state->TransferSecondsPerIteration());
}

// ---- Property tests over random move sequences ---------------------------

struct PropertyParam {
  ComputeModel model;
  const char* graph_kind;  // "rmat", "powerlaw", "ring"
  int num_dcs;
};

class MoveSequenceTest : public ::testing::TestWithParam<PropertyParam> {
 protected:
  static Graph MakeGraph(const char* kind) {
    if (std::string(kind) == "rmat") {
      RmatOptions opt;
      opt.num_vertices = 256;
      opt.num_edges = 2048;
      return GenerateRmat(opt);
    }
    if (std::string(kind) == "powerlaw") {
      PowerLawOptions opt;
      opt.num_vertices = 256;
      opt.num_edges = 2048;
      return GeneratePowerLaw(opt);
    }
    return GenerateRing(256, 4);
  }

  static PartitionConfig MakeConfig(ComputeModel model) {
    PartitionConfig c;
    c.model = model;
    c.theta = 8;
    c.workload = Workload::PageRank(10);
    return c;
  }
};

TEST_P(MoveSequenceTest, IncrementalStateMatchesRebuild) {
  const PropertyParam& param = GetParam();
  Instance inst(MakeGraph(param.graph_kind),
                MakeEc2Topology(param.num_dcs, Heterogeneity::kMedium),
                MakeConfig(param.model));
  inst.state->ResetDerived(inst.locations);
  Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    const VertexId v =
        static_cast<VertexId>(rng.UniformInt(inst.graph.num_vertices()));
    const DcId to = static_cast<DcId>(rng.UniformInt(param.num_dcs));
    inst.state->MoveMaster(v, to);
  }
  EXPECT_TRUE(inst.state->CheckInvariants());
}

TEST_P(MoveSequenceTest, EvaluateMoveMatchesApplyAndMeasure) {
  const PropertyParam& param = GetParam();
  Instance inst(MakeGraph(param.graph_kind),
                MakeEc2Topology(param.num_dcs, Heterogeneity::kMedium),
                MakeConfig(param.model));
  inst.state->ResetDerived(inst.locations);
  Rng rng(17);
  EvalScratch scratch;
  for (int i = 0; i < 100; ++i) {
    const VertexId v =
        static_cast<VertexId>(rng.UniformInt(inst.graph.num_vertices()));
    const DcId to = static_cast<DcId>(rng.UniformInt(param.num_dcs));
    const DcId from = inst.state->master(v);
    const Objective predicted = inst.state->EvaluateMove(v, to, &scratch);
    inst.state->MoveMaster(v, to);
    const Objective actual = inst.state->CurrentObjective();
    EXPECT_NEAR(predicted.transfer_seconds, actual.transfer_seconds,
                1e-12 + 1e-9 * actual.transfer_seconds);
    EXPECT_NEAR(predicted.cost_dollars, actual.cost_dollars,
                1e-12 + 1e-9 * std::fabs(actual.cost_dollars));
    // Alternate: keep half the moves, roll back the rest.
    if (i % 2 == 0) inst.state->MoveMaster(v, from);
  }
}

TEST_P(MoveSequenceTest, MoveAndMoveBackRestoresObjective) {
  const PropertyParam& param = GetParam();
  Instance inst(MakeGraph(param.graph_kind),
                MakeEc2Topology(param.num_dcs, Heterogeneity::kMedium),
                MakeConfig(param.model));
  inst.state->ResetDerived(inst.locations);
  const Objective before = inst.state->CurrentObjective();
  Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    const VertexId v =
        static_cast<VertexId>(rng.UniformInt(inst.graph.num_vertices()));
    const DcId from = inst.state->master(v);
    const DcId to = static_cast<DcId>(rng.UniformInt(param.num_dcs));
    inst.state->MoveMaster(v, to);
    inst.state->MoveMaster(v, from);
  }
  const Objective after = inst.state->CurrentObjective();
  EXPECT_NEAR(before.transfer_seconds, after.transfer_seconds,
              1e-9 * (1 + before.transfer_seconds));
  EXPECT_NEAR(before.cost_dollars, after.cost_dollars,
              1e-9 * (1 + std::fabs(before.cost_dollars)));
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndGraphs, MoveSequenceTest,
    ::testing::Values(
        PropertyParam{ComputeModel::kHybridCut, "rmat", 8},
        PropertyParam{ComputeModel::kHybridCut, "powerlaw", 8},
        PropertyParam{ComputeModel::kHybridCut, "ring", 4},
        PropertyParam{ComputeModel::kHybridCut, "powerlaw", 3},
        PropertyParam{ComputeModel::kEdgeCut, "rmat", 8},
        PropertyParam{ComputeModel::kEdgeCut, "powerlaw", 4},
        PropertyParam{ComputeModel::kEdgeCut, "ring", 8}),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      std::string name =
          info.param.model == ComputeModel::kHybridCut ? "Hybrid" : "EdgeCut";
      name += "_";
      name += info.param.graph_kind;
      name += "_" + std::to_string(info.param.num_dcs) + "dcs";
      return name;
    });

// ---- Explicit placement (vertex-cut) property tests -----------------------

class ExplicitPlacementTest : public ::testing::Test {
 protected:
  ExplicitPlacementTest()
      : inst_(MakeGraphStatic(), MakeEc2Topology(8, Heterogeneity::kMedium),
              MakeConfig()) {
    inst_.state->ResetUnplaced(inst_.locations);
  }

  static Graph MakeGraphStatic() {
    RmatOptions opt;
    opt.num_vertices = 256;
    opt.num_edges = 2048;
    return GenerateRmat(opt);
  }

  static PartitionConfig MakeConfig() {
    PartitionConfig c;
    c.model = ComputeModel::kVertexCut;
    c.workload = Workload::PageRank(10);
    return c;
  }

  Instance inst_;
};

TEST_F(ExplicitPlacementTest, PlaceEdgeSequenceMatchesRebuild) {
  Rng rng(5);
  for (EdgeId e = 0; e < inst_.graph.num_edges(); ++e) {
    inst_.state->PlaceEdge(e, static_cast<DcId>(rng.UniformInt(8)));
  }
  // Re-place a random subset.
  for (int i = 0; i < 500; ++i) {
    const EdgeId e = rng.UniformInt(inst_.graph.num_edges());
    inst_.state->PlaceEdge(e, static_cast<DcId>(rng.UniformInt(8)));
  }
  EXPECT_TRUE(inst_.state->CheckInvariants());
}

TEST_F(ExplicitPlacementTest, EvaluatePlaceEdgeMatchesApply) {
  Rng rng(6);
  EvalScratch scratch;
  for (EdgeId e = 0; e < inst_.graph.num_edges(); ++e) {
    inst_.state->PlaceEdge(e, static_cast<DcId>(rng.UniformInt(8)));
  }
  for (int i = 0; i < 200; ++i) {
    const EdgeId e = rng.UniformInt(inst_.graph.num_edges());
    const DcId to = static_cast<DcId>(rng.UniformInt(8));
    const Objective predicted =
        inst_.state->EvaluatePlaceEdge(e, to, &scratch);
    inst_.state->PlaceEdge(e, to);
    const Objective actual = inst_.state->CurrentObjective();
    EXPECT_NEAR(predicted.transfer_seconds, actual.transfer_seconds,
                1e-12 + 1e-9 * actual.transfer_seconds);
    EXPECT_NEAR(predicted.cost_dollars, actual.cost_dollars,
                1e-12 + 1e-9 * std::fabs(actual.cost_dollars));
  }
}

TEST_F(ExplicitPlacementTest, SetMasterKeepsInvariants) {
  Rng rng(7);
  for (EdgeId e = 0; e < inst_.graph.num_edges(); ++e) {
    inst_.state->PlaceEdge(e, static_cast<DcId>(rng.UniformInt(8)));
  }
  for (int i = 0; i < 200; ++i) {
    const VertexId v =
        static_cast<VertexId>(rng.UniformInt(inst_.graph.num_vertices()));
    inst_.state->SetMaster(v, static_cast<DcId>(rng.UniformInt(8)));
  }
  EXPECT_TRUE(inst_.state->CheckInvariants());
}

TEST_F(ExplicitPlacementTest, UnplacedEdgesContributeNothing) {
  EXPECT_DOUBLE_EQ(inst_.state->TransferSecondsPerIteration(), 0.0);
  EXPECT_DOUBLE_EQ(inst_.state->WanBytesPerIteration(), 0.0);
}

// ---- Self-loops and multi-edges -----------------------------------------

TEST(PartitionStateTest, SelfLoopsAndMultiEdgesKeepInvariants) {
  GraphBuilder b(4);
  b.AddEdge(0, 0);  // self-loop
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);  // multi-edge
  b.AddEdge(1, 0);
  b.AddEdge(2, 3);
  b.AddEdge(3, 3);  // self-loop
  Instance inst(std::move(b).Build(), MakeEc2Topology(4, Heterogeneity::kMedium),
                HybridConfig(/*theta=*/2));
  inst.state->ResetDerived(inst.locations);
  Rng rng(12);
  for (int i = 0; i < 200; ++i) {
    inst.state->MoveMaster(static_cast<VertexId>(rng.UniformInt(4)),
                           static_cast<DcId>(rng.UniformInt(4)));
  }
  EXPECT_TRUE(inst.state->CheckInvariants());
}

// ---- Misc ---------------------------------------------------------------

TEST(PartitionStateTest, AutoThetaSelectsTopFraction) {
  PowerLawOptions opt;
  opt.num_vertices = 4096;
  opt.num_edges = 1 << 16;
  Graph g = GeneratePowerLaw(opt);
  const uint32_t theta = PartitionState::AutoTheta(g, 0.02);
  uint64_t high = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.InDegree(v) >= theta) ++high;
  }
  const double fraction = static_cast<double>(high) / g.num_vertices();
  EXPECT_GT(fraction, 0.0);
  EXPECT_LT(fraction, 0.06);
}

TEST(PartitionStateTest, HybridReplicationBelowVertexCutOnSkewedGraph) {
  // The Fig. 2 phenomenon: hybrid-cut yields a lower replication factor
  // than random vertex-cut on a skewed graph.
  PowerLawOptions opt;
  opt.num_vertices = 1024;
  opt.num_edges = 1 << 14;
  Graph g = GeneratePowerLaw(opt);
  Topology topo = MakeEc2Topology(8, Heterogeneity::kMedium);
  Rng rng(4);
  std::vector<DcId> locations(g.num_vertices());
  for (auto& l : locations) l = static_cast<DcId>(rng.UniformInt(8));
  std::vector<double> sizes(g.num_vertices(), 1e6);

  // Random vertex-cut.
  PartitionConfig vc;
  vc.model = ComputeModel::kVertexCut;
  PartitionState vc_state(&g, &topo, &locations, &sizes, vc);
  std::vector<DcId> edge_dc(g.num_edges());
  for (auto& dc : edge_dc) dc = static_cast<DcId>(rng.UniformInt(8));
  vc_state.ResetWithPlacement(locations, edge_dc);

  // Hash hybrid-cut.
  PartitionConfig hc;
  hc.model = ComputeModel::kHybridCut;
  hc.theta = PartitionState::AutoTheta(g, 0.02);
  PartitionState hc_state(&g, &topo, &locations, &sizes, hc);
  std::vector<DcId> masters(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    masters[v] = static_cast<DcId>(HashU64(v) % 8);
  }
  hc_state.ResetDerived(masters);

  EXPECT_LT(hc_state.ReplicationFactor(), vc_state.ReplicationFactor());
}

TEST(PartitionStateTest, MasterAndEdgeCountsTrackMoves) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Instance inst(std::move(b).Build(), MakeUniformTopology(2), HybridConfig());
  inst.state->ResetDerived({0, 0, 0});
  EXPECT_EQ(inst.state->MasterCount(0), 3u);
  EXPECT_EQ(inst.state->EdgeCount(0), 2u);
  inst.state->MoveMaster(1, 1);
  EXPECT_EQ(inst.state->MasterCount(0), 2u);
  EXPECT_EQ(inst.state->MasterCount(1), 1u);
  // Low-cut: in-edge (0->1) follows vertex 1's master to DC1.
  EXPECT_EQ(inst.state->EdgeCount(1), 1u);
}

TEST(PartitionStateTest, EdgeCutModelHasNoGatherTraffic) {
  PowerLawOptions opt;
  opt.num_vertices = 512;
  opt.num_edges = 4096;
  PartitionConfig c;
  c.model = ComputeModel::kEdgeCut;
  c.workload = Workload::PageRank(10);
  Instance inst(GeneratePowerLaw(opt), MakeEc2Topology(8, Heterogeneity::kMedium),
                c);
  inst.state->ResetDerived(inst.locations);
  EXPECT_EQ(inst.state->NumHighDegree(), 0u);
  // All traffic must be apply-stage: replication-driven sync only. With
  // no gather, per-iteration WAN equals apply uploads, and moving a
  // vertex with no edges changes nothing but move cost.
  EXPECT_GT(inst.state->WanBytesPerIteration(), 0.0);
}

TEST(PartitionStateTest, VertexCutModelAllHighDegree) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  PartitionConfig c;
  c.model = ComputeModel::kVertexCut;
  Instance inst(std::move(b).Build(), MakeUniformTopology(2), c);
  EXPECT_EQ(inst.state->NumHighDegree(), 3u);
}

}  // namespace
}  // namespace rlcut
