#include "fault/fault.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace rlcut {
namespace {

using fault::FaultRule;
using fault::FaultSchedule;

// Every test arms global state; always start and finish clean.
class FaultTest : public ::testing::Test {
 protected:
  FaultTest() { fault::Disarm(); }
  ~FaultTest() override {
    fault::SetStepContext(-1);
    fault::Disarm();
  }
};

TEST_F(FaultTest, ParseAcceptsTheDocumentedGrammar) {
  FaultSchedule schedule;
  std::string error;
  ASSERT_TRUE(FaultSchedule::Parse(
      "threadpool.task_throw:prob=0.05;"
      "checkpoint.short_write:nth=2,amount=7,steps=1-3,max=4",
      /*seed=*/42, &schedule, &error))
      << error;
  ASSERT_EQ(schedule.rules.size(), 2u);
  EXPECT_EQ(schedule.seed, 42u);
  EXPECT_EQ(schedule.rules[0].site, "threadpool.task_throw");
  EXPECT_DOUBLE_EQ(schedule.rules[0].probability, 0.05);
  EXPECT_EQ(schedule.rules[1].site, "checkpoint.short_write");
  EXPECT_EQ(schedule.rules[1].nth, 2);
  EXPECT_EQ(schedule.rules[1].amount, 7);
  EXPECT_EQ(schedule.rules[1].step_lo, 1);
  EXPECT_EQ(schedule.rules[1].step_hi, 3);
  EXPECT_EQ(schedule.rules[1].max_fires, 4);

  // An empty spec is a valid empty schedule.
  ASSERT_TRUE(FaultSchedule::Parse("", 1, &schedule, &error));
  EXPECT_TRUE(schedule.rules.empty());
}

TEST_F(FaultTest, ParseRejectsMalformedSpecs) {
  FaultSchedule schedule;
  std::string error;
  EXPECT_FALSE(
      FaultSchedule::Parse("no.such.site:nth=1", 1, &schedule, &error));
  EXPECT_NE(error.find("unknown fault site"), std::string::npos);

  EXPECT_FALSE(FaultSchedule::Parse("threadpool.task_throw", 1, &schedule,
                                    &error));
  EXPECT_FALSE(FaultSchedule::Parse("threadpool.task_throw:prob", 1,
                                    &schedule, &error));
  EXPECT_FALSE(FaultSchedule::Parse("threadpool.task_throw:prob=2.0", 1,
                                    &schedule, &error));
  EXPECT_FALSE(FaultSchedule::Parse("threadpool.task_throw:nth=0", 1,
                                    &schedule, &error));
  // A rule without a trigger can never fire: reject it loudly.
  EXPECT_FALSE(FaultSchedule::Parse("threadpool.task_throw:max=3", 1,
                                    &schedule, &error));
  EXPECT_NE(error.find("needs a prob= or nth= trigger"), std::string::npos);
}

TEST_F(FaultTest, ParseRoundTripsThroughToSpec) {
  FaultSchedule schedule;
  std::string error;
  ASSERT_TRUE(FaultSchedule::Parse(
      "trainer.chunk_stall:prob=0.25,amount=12;plan.rename_fail:nth=1", 9,
      &schedule, &error));
  FaultSchedule reparsed;
  ASSERT_TRUE(
      FaultSchedule::Parse(schedule.ToSpec(), 9, &reparsed, &error));
  ASSERT_EQ(reparsed.rules.size(), schedule.rules.size());
  for (size_t i = 0; i < schedule.rules.size(); ++i) {
    EXPECT_EQ(reparsed.rules[i].site, schedule.rules[i].site);
    EXPECT_DOUBLE_EQ(reparsed.rules[i].probability,
                     schedule.rules[i].probability);
    EXPECT_EQ(reparsed.rules[i].nth, schedule.rules[i].nth);
    EXPECT_EQ(reparsed.rules[i].amount, schedule.rules[i].amount);
  }
}

TEST_F(FaultTest, DisarmedSitesNeverFire) {
  ASSERT_FALSE(fault::Armed());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(fault::ShouldFire("threadpool.task_throw"));
  }
  EXPECT_EQ(fault::TotalFires(), 0u);
}

TEST_F(FaultTest, NthTriggerFiresExactlyOnce) {
  FaultSchedule schedule;
  std::string error;
  ASSERT_TRUE(FaultSchedule::Parse("checkpoint.open_fail:nth=3", 1,
                                   &schedule, &error));
  fault::Arm(schedule);
  ASSERT_TRUE(fault::Armed());
  int fired_at = -1;
  for (int hit = 1; hit <= 10; ++hit) {
    if (fault::ShouldFire("checkpoint.open_fail")) {
      EXPECT_EQ(fired_at, -1) << "fired twice";
      fired_at = hit;
    }
  }
  EXPECT_EQ(fired_at, 3);
  EXPECT_EQ(fault::FireCount("checkpoint.open_fail"), 1u);
  EXPECT_EQ(fault::TotalFires(), 1u);
}

TEST_F(FaultTest, ProbabilityTriggerIsDeterministicPerSeed) {
  auto fire_pattern = [](uint64_t seed) {
    FaultSchedule schedule;
    std::string error;
    EXPECT_TRUE(FaultSchedule::Parse("trainer.chunk_abandon:prob=0.5", seed,
                                     &schedule, &error));
    fault::Arm(schedule);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(fault::ShouldFire("trainer.chunk_abandon"));
    }
    fault::Disarm();
    return fired;
  };
  const std::vector<bool> first = fire_pattern(7);
  EXPECT_EQ(first, fire_pattern(7));
  // 64 fair-coin hits colliding across seeds is a 2^-64 event.
  EXPECT_NE(first, fire_pattern(8));
}

TEST_F(FaultTest, StepWindowGatesFiring) {
  FaultSchedule schedule;
  std::string error;
  ASSERT_TRUE(FaultSchedule::Parse("plan.fsync_fail:nth=1,steps=2-3", 1,
                                   &schedule, &error));
  fault::Arm(schedule);
  // Outside any step: the hit is consumed but cannot fire.
  EXPECT_FALSE(fault::ShouldFire("plan.fsync_fail"));
  fault::SetStepContext(1);
  EXPECT_FALSE(fault::ShouldFire("plan.fsync_fail"));
  fault::SetStepContext(2);
  // nth=1 already consumed by the hits above; rearm for a clean count.
  fault::Arm(schedule);
  EXPECT_TRUE(fault::ShouldFire("plan.fsync_fail"));
  fault::SetStepContext(4);
  fault::Arm(schedule);
  EXPECT_FALSE(fault::ShouldFire("plan.fsync_fail"));
}

TEST_F(FaultTest, MaxFiresCapsProbabilisticRules) {
  FaultSchedule schedule;
  std::string error;
  ASSERT_TRUE(FaultSchedule::Parse("threadpool.worker_stall:prob=1.0,max=2",
                                   1, &schedule, &error));
  fault::Arm(schedule);
  int fires = 0;
  for (int i = 0; i < 20; ++i) {
    if (fault::ShouldFire("threadpool.worker_stall")) ++fires;
  }
  EXPECT_EQ(fires, 2);
}

TEST_F(FaultTest, AmountPayloadReachesTheCaller) {
  FaultSchedule schedule;
  std::string error;
  ASSERT_TRUE(FaultSchedule::Parse("trainer.chunk_stall:nth=1,amount=37", 1,
                                   &schedule, &error));
  fault::Arm(schedule);
  int64_t amount = -1;
  ASSERT_TRUE(fault::ShouldFire("trainer.chunk_stall", &amount));
  EXPECT_EQ(amount, 37);
}

TEST_F(FaultTest, KnownSitesCoverEverySpecableSite) {
  // Every registered site must itself parse, so the docs table and the
  // grammar can never drift apart.
  for (const fault::SiteInfo& info : fault::KnownSites()) {
    FaultSchedule schedule;
    std::string error;
    EXPECT_TRUE(FaultSchedule::Parse(std::string(info.name) + ":nth=1", 1,
                                     &schedule, &error))
        << info.name << ": " << error;
  }
  EXPECT_GE(fault::KnownSites().size(), 13u);
}

}  // namespace
}  // namespace rlcut
