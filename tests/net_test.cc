// Unit tests for the src/net transport stack: retry policy, frame
// codec, plan delta/snapshot wire formats, the replica protocol state
// machine, and the client end-to-end over FlakyPipe and TCP loopback
// (docs/distributed.md).

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "gtest/gtest.h"
#include "net/replica_service.h"
#include "net/retry.h"
#include "net/transport.h"
#include "partition/plan_delta.h"

namespace rlcut {
namespace {

using net::Frame;
using net::FrameDecoder;
using net::FrameType;
using net::ReplicaClient;
using net::ReplicaClientOptions;
using net::ReplicaServer;
using net::RetryPolicy;

// ---- RetryPolicy -----------------------------------------------------

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithinJitterBounds) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 4;
  policy.max_backoff_ms = 64;
  policy.multiplier = 2.0;
  policy.jitter = 0.25;
  double base = 4;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const double ms = net::BackoffMs(policy, /*op_id=*/7, attempt);
    EXPECT_GE(ms, base * 0.75) << "attempt " << attempt;
    EXPECT_LE(ms, base * 1.25) << "attempt " << attempt;
    base = std::min(base * 2, 64.0);
  }
}

TEST(RetryPolicyTest, BackoffIsDeterministicInSeedOpAndAttempt) {
  RetryPolicy policy;
  policy.seed = 42;
  EXPECT_EQ(net::BackoffMs(policy, 3, 2), net::BackoffMs(policy, 3, 2));
  // Different ops (and different attempts) draw decorrelated jitter.
  policy.jitter = 0.5;
  EXPECT_NE(net::BackoffMs(policy, 3, 2), net::BackoffMs(policy, 4, 2));
}

TEST(RetryCallTest, SucceedsAfterTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 0.01;
  int calls = 0;
  net::RetryOutcome outcome;
  const Status status = net::RetryCall(
      policy, 1, "test.op",
      [&]() -> Status {
        return ++calls < 3 ? Status::IoError("flaky") : Status::Ok();
      },
      nullptr, &outcome);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_FALSE(outcome.exhausted);
}

TEST(RetryCallTest, ExhaustionReturnsLastErrorWithAttemptCount) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 0.01;
  net::RetryOutcome outcome;
  const Status status = net::RetryCall(
      policy, 1, "test.op",
      [] { return Status::IoError("still down"); }, nullptr, &outcome);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("3 attempts"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("still down"), std::string::npos);
  EXPECT_TRUE(outcome.exhausted);
}

TEST(RetryCallTest, DeadlineStopsRetriesEarly) {
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff_ms = 20;
  policy.max_backoff_ms = 20;
  policy.jitter = 0;
  policy.deadline_seconds = 0.05;
  int calls = 0;
  net::RetryOutcome outcome;
  const Status status = net::RetryCall(
      policy, 1, "test.op",
      [&] {
        ++calls;
        return Status::IoError("down");
      },
      nullptr, &outcome);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(outcome.exhausted);
  EXPECT_LT(calls, 10);  // nowhere near max_attempts
}

TEST(RetryCallTest, CancelStopsRetrying) {
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff_ms = 5;
  std::atomic<bool> cancel{false};
  int calls = 0;
  const Status status = net::RetryCall(
      policy, 1, "test.op",
      [&] {
        if (++calls == 2) cancel.store(true);
        return Status::IoError("down");
      },
      &cancel);
  EXPECT_FALSE(status.ok());
  EXPECT_LE(calls, 3);
}

// ---- Frame codec -----------------------------------------------------

TEST(FrameTest, EncodeDecodeRoundTrip) {
  Frame in;
  in.type = FrameType::kDelta;
  in.payload = "hello frames";
  FrameDecoder decoder;
  decoder.Feed(net::EncodeFrame(in));
  Frame out;
  Result<bool> next = decoder.Next(&out);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  ASSERT_TRUE(*next);
  EXPECT_EQ(out.type, FrameType::kDelta);
  EXPECT_EQ(out.payload, "hello frames");
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameTest, DecoderHandlesBytewiseFeedAndMultipleFrames) {
  Frame a{FrameType::kPing, ""};
  Frame b{FrameType::kAck, std::string(100, 'x')};
  const std::string stream = net::EncodeFrame(a) + net::EncodeFrame(b);
  FrameDecoder decoder;
  std::vector<Frame> out;
  for (char c : stream) {
    decoder.Feed(std::string(1, c));
    Frame frame;
    Result<bool> next = decoder.Next(&frame);
    ASSERT_TRUE(next.ok());
    if (*next) out.push_back(frame);
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].type, FrameType::kPing);
  EXPECT_EQ(out[1].payload, b.payload);
}

TEST(FrameTest, CorruptionIsDetectedAndSticky) {
  std::string bytes = net::EncodeFrame({FrameType::kDelta, "payload"});
  bytes[11] ^= 0x01;  // flip a payload bit; checksum now stale
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame out;
  Result<bool> next = decoder.Next(&out);
  EXPECT_FALSE(next.ok());
  // The decoder stays in the error state even for valid follow-ups.
  decoder.Feed(net::EncodeFrame({FrameType::kPing, ""}));
  EXPECT_FALSE(decoder.Next(&out).ok());
}

TEST(FrameTest, RejectsBadMagicAndOversizedPayload) {
  {
    std::string bytes = net::EncodeFrame({FrameType::kPing, ""});
    bytes[0] = 'X';
    FrameDecoder decoder;
    decoder.Feed(bytes);
    Frame out;
    EXPECT_FALSE(decoder.Next(&out).ok());
  }
  {
    std::string bytes = net::EncodeFrame({FrameType::kPing, ""});
    const uint32_t huge = net::kMaxFramePayload + 1;
    std::memcpy(bytes.data() + 5, &huge, sizeof(huge));
    FrameDecoder decoder;
    decoder.Feed(bytes);
    Frame out;
    EXPECT_FALSE(decoder.Next(&out).ok());
  }
}

// ---- Plan delta / snapshot codecs ------------------------------------

TEST(PlanWireTest, DeltaRoundTrip) {
  PlanDelta delta;
  delta.base_version = 41;
  delta.moves = {{0, 0, 1}, {7, 2, 0}, {3, 1, 2}};
  PlanDelta out;
  ASSERT_TRUE(DecodePlanDelta(EncodePlanDelta(delta), &out).ok());
  EXPECT_EQ(out.base_version, 41u);
  ASSERT_EQ(out.moves.size(), 3u);
  EXPECT_EQ(out.moves[1].vertex, 7u);
  EXPECT_EQ(out.moves[1].from, 2);
  EXPECT_EQ(out.moves[1].to, 0);
}

TEST(PlanWireTest, SnapshotRoundTrip) {
  PlanSnapshot snapshot;
  snapshot.version = 9;
  snapshot.num_dcs = 3;
  snapshot.masters = {0, 2, 1, 1};
  PlanSnapshot out;
  ASSERT_TRUE(DecodePlanSnapshot(EncodePlanSnapshot(snapshot), &out).ok());
  EXPECT_EQ(out.version, 9u);
  EXPECT_EQ(out.num_dcs, 3);
  EXPECT_EQ(out.masters, snapshot.masters);
}

TEST(PlanWireTest, RejectsTruncationAndHugeCounts) {
  PlanDelta delta;
  delta.base_version = 1;
  delta.moves = {{0, 0, 1}};
  const std::string bytes = EncodePlanDelta(delta);
  PlanDelta out;
  EXPECT_FALSE(DecodePlanDelta(bytes.substr(0, bytes.size() - 3), &out).ok());
  EXPECT_FALSE(DecodePlanDelta(bytes + "extra", &out).ok());
  // A count field claiming 2^56 moves must be rejected by the
  // remaining-bytes bound before any allocation.
  std::string bomb;
  bomb.resize(16);
  const uint64_t base = 1, count = 1ull << 56;
  std::memcpy(bomb.data(), &base, 8);
  std::memcpy(bomb.data() + 8, &count, 8);
  EXPECT_FALSE(DecodePlanDelta(bomb, &out).ok());
}

// ---- PlanReplica resync ----------------------------------------------

TEST(PlanReplicaTest, InstallSnapshotHealsVersionGap) {
  PlanReplica owner({0, 1, 0, 1}, 2);
  PlanDelta delta;
  delta.base_version = 0;
  delta.moves = {{0, 0, 1}};
  ASSERT_TRUE(owner.Apply(delta).ok());
  EXPECT_EQ(owner.version(), 1u);

  // A restarted (empty) replica cannot apply the next delta: gap.
  PlanReplica restarted;
  PlanDelta next;
  next.base_version = 1;
  next.moves = {{2, 0, 1}};
  EXPECT_FALSE(restarted.Apply(next).ok());

  // Resync: install the owner's snapshot, then the delta chains.
  ASSERT_TRUE(restarted.InstallSnapshot(owner.Snapshot()).ok());
  EXPECT_EQ(restarted.version(), 1u);
  ASSERT_TRUE(restarted.Apply(next).ok());
  ASSERT_TRUE(owner.Apply(next).ok());
  EXPECT_EQ(restarted.Fingerprint(), owner.Fingerprint());
}

TEST(PlanReplicaTest, RejectsInconsistentSnapshot) {
  PlanReplica replica;
  PlanSnapshot bad;
  bad.version = 1;
  bad.num_dcs = 2;
  bad.masters = {0, 5};  // master outside [0, num_dcs)
  EXPECT_FALSE(replica.InstallSnapshot(bad).ok());
  EXPECT_EQ(replica.version(), 0u);  // untouched
}

// ---- FlakyPipe -------------------------------------------------------

TEST(FlakyPipeTest, DeliversBytesAndEofOnClose) {
  auto [a, b] = net::FlakyPipe::CreatePair();
  ASSERT_TRUE(a->Send("ping").ok());
  Result<std::string> got = b->Recv(1000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "ping");
  // Timeout with a healthy peer: empty string, OK status.
  got = b->Recv(10);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
  a->Close();
  got = b->Recv(1000);
  EXPECT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("EOF"), std::string::npos);
}

// ---- ReplicaServer protocol ------------------------------------------

TEST(ReplicaServerTest, ProtocolStateMachine) {
  ReplicaServer server;

  net::HelloMsg hello;
  Result<Frame> reply = server.HandleFrame(
      Frame{FrameType::kHello, net::EncodeHello(hello)});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, FrameType::kHelloAck);

  // Snapshot install -> Ack with the new version + fingerprint.
  PlanSnapshot snapshot;
  snapshot.version = 5;
  snapshot.num_dcs = 2;
  snapshot.masters = {0, 1, 1, 0};
  reply = server.HandleFrame(
      Frame{FrameType::kSnapshot, EncodePlanSnapshot(snapshot)});
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->type, FrameType::kAck);
  net::AckMsg ack;
  ASSERT_TRUE(net::DecodeAck(reply->payload, &ack).ok());
  EXPECT_EQ(ack.version, 5u);
  EXPECT_EQ(ack.fingerprint, MastersFingerprint(snapshot.masters));

  // A chained delta Acks; a gapped delta Nacks with the server version.
  PlanDelta delta;
  delta.base_version = 5;
  delta.moves = {{0, 0, 1}};
  reply = server.HandleFrame(
      Frame{FrameType::kDelta, EncodePlanDelta(delta)});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, FrameType::kAck);
  EXPECT_EQ(server.version(), 6u);

  PlanDelta gapped;
  gapped.base_version = 99;
  reply = server.HandleFrame(
      Frame{FrameType::kDelta, EncodePlanDelta(gapped)});
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->type, FrameType::kNack);
  net::NackMsg nack;
  ASSERT_TRUE(net::DecodeNack(reply->payload, &nack).ok());
  EXPECT_EQ(nack.server_version, 6u);

  // Ping -> Pong; malformed payloads drop the connection (non-OK).
  reply = server.HandleFrame(Frame{FrameType::kPing, ""});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, FrameType::kPong);
  EXPECT_FALSE(server.HandleFrame(Frame{FrameType::kDelta, "junk"}).ok());
}

// ---- ReplicaClient end-to-end ----------------------------------------

// Serves sequential TCP connections on a background thread until
// stopped; the server object can be swapped to simulate a worker
// restart.
class TcpServerHost {
 public:
  TcpServerHost() {
    auto listener = net::TcpListener::Listen(0);
    EXPECT_TRUE(listener.ok());
    listener_ = std::move(*listener);
    server_ = std::make_shared<ReplicaServer>(MakeOptions());
    thread_ = std::thread([this] { Loop(); });
  }

  ~TcpServerHost() {
    stop_.store(true);
    listener_->Close();
    thread_.join();
  }

  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(listener_->port());
  }

  std::shared_ptr<ReplicaServer> server() {
    std::lock_guard<std::mutex> lock(mu_);
    return server_;
  }

  // Simulates a worker restart: the next connection lands on a fresh,
  // empty replica.
  void Restart() {
    std::lock_guard<std::mutex> lock(mu_);
    server_ = std::make_shared<ReplicaServer>(MakeOptions());
  }

 private:
  static net::ReplicaServerOptions MakeOptions() {
    net::ReplicaServerOptions options;
    options.idle_timeout_ms = 20;
    return options;
  }

  void Loop() {
    while (!stop_.load()) {
      Result<std::unique_ptr<net::Transport>> accepted =
          listener_->Accept(/*timeout_ms=*/50);
      if (!accepted.ok()) continue;
      std::shared_ptr<ReplicaServer> server;
      {
        std::lock_guard<std::mutex> lock(mu_);
        server = server_;
      }
      (void)server->ServeConnection(accepted->get(), &stop_);
    }
  }

  std::unique_ptr<net::TcpListener> listener_;
  std::mutex mu_;
  std::shared_ptr<ReplicaServer> server_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

ReplicaClientOptions FastClientOptions() {
  ReplicaClientOptions options;
  options.dial_timeout_ms = 1000;
  options.recv_timeout_ms = 1000;
  options.retry.max_attempts = 6;
  options.retry.initial_backoff_ms = 1;
  options.retry.deadline_seconds = 5;
  return options;
}

TEST(ReplicaClientTest, SyncsOverTcpLoopback) {
  TcpServerHost host;
  ReplicaClient client(
      ReplicaClient::TcpConnector(host.endpoint(), 1000),
      FastClientOptions());

  PlanSnapshot snapshot;
  snapshot.version = 0;
  snapshot.num_dcs = 2;
  snapshot.masters = {0, 1, 0, 1};
  ASSERT_TRUE(client.Begin(snapshot).ok());

  PlanDelta delta;
  delta.base_version = 0;
  delta.moves = {{1, 1, 0}};
  ASSERT_TRUE(client.PushDelta(delta).ok());
  ASSERT_TRUE(client.Flush().ok());
  EXPECT_FALSE(client.degraded());

  client.CloseConnection();
  EXPECT_EQ(host.server()->version(), client.mirror_version());
  EXPECT_EQ(host.server()->fingerprint(), client.mirror_fingerprint());
}

TEST(ReplicaClientTest, ResyncsAfterServerRestart) {
  TcpServerHost host;
  ReplicaClient client(
      ReplicaClient::TcpConnector(host.endpoint(), 1000),
      FastClientOptions());

  PlanSnapshot snapshot;
  snapshot.version = 0;
  snapshot.num_dcs = 2;
  snapshot.masters = {0, 1, 0, 1};
  ASSERT_TRUE(client.Begin(snapshot).ok());
  PlanDelta delta;
  delta.base_version = 0;
  delta.moves = {{0, 0, 1}};
  ASSERT_TRUE(client.PushDelta(delta).ok());
  ASSERT_TRUE(client.Flush().ok());

  // Worker dies and comes back empty; the client's old connection is
  // gone and the fresh server is versions behind.
  client.CloseConnection();
  host.Restart();

  PlanDelta next;
  next.base_version = 1;
  next.moves = {{2, 0, 1}};
  ASSERT_TRUE(client.PushDelta(next).ok());
  const Status flushed = client.Flush();
  ASSERT_TRUE(flushed.ok()) << flushed.ToString();

  client.CloseConnection();
  EXPECT_GE(client.resyncs(), 1u);
  EXPECT_EQ(host.server()->version(), 2u);
  EXPECT_EQ(host.server()->fingerprint(), client.mirror_fingerprint());
}

TEST(ReplicaClientTest, DegradesWithoutServerAndFlushFailsClosed) {
  // No listener on this port (connector always fails).
  ReplicaClientOptions options = FastClientOptions();
  options.dial_timeout_ms = 50;
  options.retry.max_attempts = 2;
  options.retry.deadline_seconds = 0.5;
  ReplicaClient client(
      []() -> Result<std::unique_ptr<net::Transport>> {
        return Status::IoError("connection refused");
      },
      options);

  PlanSnapshot snapshot;
  snapshot.version = 0;
  snapshot.num_dcs = 2;
  snapshot.masters = {0, 1};
  // Begin and PushDelta degrade instead of failing the trainer.
  EXPECT_TRUE(client.Begin(snapshot).ok());
  EXPECT_TRUE(client.degraded());
  PlanDelta delta;
  delta.base_version = 0;
  delta.moves = {{0, 0, 1}};
  EXPECT_TRUE(client.PushDelta(delta).ok());
  EXPECT_EQ(client.mirror_version(), 1u);  // mirror still advances
  // Flush is the fail-closed barrier.
  EXPECT_FALSE(client.Flush().ok());
  EXPECT_TRUE(client.ever_degraded());
}

TEST(ReplicaClientTest, MirrorRejectsCorruptDeltaHard) {
  TcpServerHost host;
  ReplicaClient client(
      ReplicaClient::TcpConnector(host.endpoint(), 1000),
      FastClientOptions());
  PlanSnapshot snapshot;
  snapshot.version = 0;
  snapshot.num_dcs = 2;
  snapshot.masters = {0, 1};
  ASSERT_TRUE(client.Begin(snapshot).ok());
  // A delta whose `from` disagrees with the mirror is a real bug in the
  // caller, not a network condition: hard error, not degraded mode.
  PlanDelta bad;
  bad.base_version = 0;
  bad.moves = {{0, 1, 0}};  // vertex 0 masters at DC 0, not 1
  EXPECT_FALSE(client.PushDelta(bad).ok());
}

}  // namespace
}  // namespace rlcut
