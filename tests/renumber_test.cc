#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/topology.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/rlg.h"
#include "graph/transform.h"
#include "partition/partition_state.h"

namespace rlcut {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

Graph MakeTestGraph(uint64_t seed = 7) {
  PowerLawOptions options;
  options.num_vertices = 512;
  options.num_edges = 4096;
  options.seed = seed;
  return GeneratePowerLaw(options);
}

bool IsBijection(const std::vector<VertexId>& perm) {
  std::vector<uint8_t> seen(perm.size(), 0);
  for (const VertexId v : perm) {
    if (v >= perm.size() || seen[v]) return false;
    seen[v] = 1;
  }
  return true;
}

std::multiset<std::pair<VertexId, VertexId>> EdgeMultiset(const Graph& g) {
  std::multiset<std::pair<VertexId, VertexId>> edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge edge = g.GetEdge(e);
    edges.insert({edge.src, edge.dst});
  }
  return edges;
}

// ---- Permutation builders ----------------------------------------------

TEST(VertexOrderTest, IdentityRoundTrips) {
  const VertexPermutation perm = IdentityOrder(16);
  for (VertexId v = 0; v < 16; ++v) {
    EXPECT_EQ(perm.new_of_old[v], v);
    EXPECT_EQ(perm.old_of_new[v], v);
  }
}

TEST(VertexOrderTest, BuildersProduceBijectionsWithExactInverses) {
  const Graph g = MakeTestGraph();
  for (const VertexOrderKind kind :
       {VertexOrderKind::kNatural, VertexOrderKind::kDegree,
        VertexOrderKind::kLocality}) {
    const VertexPermutation perm = BuildVertexOrder(g, kind);
    ASSERT_EQ(perm.size(), g.num_vertices());
    EXPECT_TRUE(IsBijection(perm.new_of_old)) << VertexOrderKindName(kind);
    EXPECT_TRUE(IsBijection(perm.old_of_new)) << VertexOrderKindName(kind);
    // perm composed with its inverse is the identity, both ways.
    for (VertexId v = 0; v < perm.size(); ++v) {
      EXPECT_EQ(perm.old_of_new[perm.new_of_old[v]], v);
      EXPECT_EQ(perm.new_of_old[perm.old_of_new[v]], v);
    }
  }
}

TEST(VertexOrderTest, DegreeOrderIsDegreeSorted) {
  const Graph g = MakeTestGraph();
  const VertexPermutation perm = DegreeDescendingOrder(g);
  for (VertexId new_id = 0; new_id + 1 < perm.size(); ++new_id) {
    EXPECT_GE(g.Degree(perm.old_of_new[new_id]),
              g.Degree(perm.old_of_new[new_id + 1]));
  }
}

TEST(VertexOrderTest, ParseNames) {
  EXPECT_TRUE(ParseVertexOrderKind("natural").ok());
  EXPECT_TRUE(ParseVertexOrderKind("degree").ok());
  EXPECT_TRUE(ParseVertexOrderKind("locality").ok());
  EXPECT_FALSE(ParseVertexOrderKind("random").ok());
  EXPECT_STREQ(VertexOrderKindName(VertexOrderKind::kDegree), "degree");
}

TEST(VertexOrderTest, PermutationFromNewOfOldRejectsNonBijections) {
  EXPECT_FALSE(PermutationFromNewOfOld({0, 0, 1}).ok());  // duplicate
  EXPECT_FALSE(PermutationFromNewOfOld({0, 3, 1}).ok());  // out of range
  auto perm = PermutationFromNewOfOld({2, 0, 1});
  ASSERT_TRUE(perm.ok());
  EXPECT_EQ(perm.value().old_of_new, (std::vector<VertexId>{1, 2, 0}));
}

// ---- ReorderVertices ---------------------------------------------------

TEST(ReorderVerticesTest, PreservesDegreesAndEdgeMultiset) {
  const Graph g = MakeTestGraph();
  const VertexPermutation perm = LocalityOrder(g);
  const Graph r = ReorderVertices(g, perm);
  ASSERT_EQ(r.num_vertices(), g.num_vertices());
  ASSERT_EQ(r.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.OutDegree(perm.new_of_old[v]), g.OutDegree(v));
    EXPECT_EQ(r.InDegree(perm.new_of_old[v]), g.InDegree(v));
  }
  // The edge multiset, mapped back to original ids, is unchanged.
  std::multiset<std::pair<VertexId, VertexId>> mapped_back;
  for (EdgeId e = 0; e < r.num_edges(); ++e) {
    const Edge edge = r.GetEdge(e);
    mapped_back.insert(
        {perm.old_of_new[edge.src], perm.old_of_new[edge.dst]});
  }
  EXPECT_EQ(mapped_back, EdgeMultiset(g));
}

TEST(ReorderVerticesTest, OldEdgeOfNewMapsEveryEdgeBack) {
  const Graph g = MakeTestGraph();
  const VertexPermutation perm = DegreeDescendingOrder(g);
  std::vector<EdgeId> old_edge_of_new;
  const Graph r = ReorderVertices(g, perm, &old_edge_of_new);
  ASSERT_EQ(old_edge_of_new.size(), g.num_edges());
  std::vector<uint8_t> seen(g.num_edges(), 0);
  for (EdgeId new_e = 0; new_e < r.num_edges(); ++new_e) {
    const EdgeId old_e = old_edge_of_new[new_e];
    ASSERT_LT(old_e, g.num_edges());
    EXPECT_FALSE(seen[old_e]);
    seen[old_e] = 1;
    // The mapped edge is the same edge in original coordinates.
    EXPECT_EQ(perm.old_of_new[r.EdgeSource(new_e)], g.EdgeSource(old_e));
    EXPECT_EQ(perm.old_of_new[r.EdgeTarget(new_e)], g.EdgeTarget(old_e));
  }
}

TEST(ReorderVerticesTest, IdentityPermutationIsIdentityMap) {
  const Graph g = MakeTestGraph();
  std::vector<EdgeId> old_edge_of_new;
  const Graph r =
      ReorderVertices(g, IdentityOrder(g.num_vertices()), &old_edge_of_new);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(old_edge_of_new[e], e);
    EXPECT_EQ(r.EdgeSource(e), g.EdgeSource(e));
    EXPECT_EQ(r.EdgeTarget(e), g.EdgeTarget(e));
  }
}

TEST(ReorderVerticesTest, PermuteAndUnpermuteVertexValuesRoundTrip) {
  const Graph g = MakeTestGraph();
  const VertexPermutation perm = LocalityOrder(g);
  std::vector<DcId> values(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    values[v] = static_cast<DcId>(v % 7);
  }
  const std::vector<DcId> permuted = PermuteVertexValues(values, perm);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(permuted[perm.new_of_old[v]], values[v]);
  }
  EXPECT_EQ(UnpermuteVertexValues(permuted, perm), values);
}

// ---- Graph copy/move view binding --------------------------------------

TEST(GraphViewTest, CopiesAndMovesRebindViews) {
  const Graph g = MakeTestGraph();
  Graph copy = g;
  EXPECT_EQ(copy.num_edges(), g.num_edges());
  EXPECT_NE(copy.view().out_targets, g.view().out_targets);
  Graph moved = std::move(copy);
  EXPECT_EQ(moved.num_edges(), g.num_edges());
  EXPECT_EQ(EdgeMultiset(moved), EdgeMultiset(g));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(moved.OutDegree(v), g.OutDegree(v));
  }
}

// ---- .rlg round trips --------------------------------------------------

TEST(RlgTest, SaveAndOpenRoundTripsArrays) {
  const Graph g = MakeTestGraph();
  const std::string path = TempPath("renumber_roundtrip.rlg");
  ASSERT_TRUE(SaveRlgGraph(g, path).ok());
  MmapGraph::Options options;
  options.validate_structure = true;
  auto mapped = MmapGraph::Open(path, options);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const Graph& m = mapped.value().graph();
  EXPECT_TRUE(m.view_backed());
  EXPECT_FALSE(mapped.value().has_orig_ids());
  ASSERT_EQ(m.num_vertices(), g.num_vertices());
  ASSERT_EQ(m.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    ASSERT_EQ(m.EdgeSource(e), g.EdgeSource(e));
    ASSERT_EQ(m.EdgeTarget(e), g.EdgeTarget(e));
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto expect_ids = g.InEdgeIds(v);
    const auto got_ids = m.InEdgeIds(v);
    ASSERT_EQ(std::vector<EdgeId>(got_ids.begin(), got_ids.end()),
              std::vector<EdgeId>(expect_ids.begin(), expect_ids.end()));
  }
  std::remove(path.c_str());
}

TEST(RlgTest, ReorderedFileCarriesOrigIds) {
  const Graph g = MakeTestGraph();
  const VertexPermutation perm = LocalityOrder(g);
  const std::string path = TempPath("renumber_ordered.rlg");
  ASSERT_TRUE(WriteRlgFile(g, &perm, {}, path).ok());
  auto mapped = MmapGraph::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(mapped.value().has_orig_ids());
  const auto orig = mapped.value().orig_of_new();
  ASSERT_EQ(orig.size(), g.num_vertices());
  for (VertexId new_id = 0; new_id < g.num_vertices(); ++new_id) {
    EXPECT_EQ(orig[new_id], perm.old_of_new[new_id]);
  }
  // The mapped graph matches an in-memory reorder exactly.
  const Graph r = ReorderVertices(g, perm);
  const Graph& m = mapped.value().graph();
  for (EdgeId e = 0; e < r.num_edges(); ++e) {
    ASSERT_EQ(m.EdgeSource(e), r.EdgeSource(e));
    ASSERT_EQ(m.EdgeTarget(e), r.EdgeTarget(e));
  }
  std::remove(path.c_str());
}

TEST(RlgTest, ConvertEdgeListMatchesInMemoryLoad) {
  const Graph g = MakeTestGraph(11);
  const std::string edges_path = TempPath("renumber_convert.txt");
  const std::string rlg_path = TempPath("renumber_convert.rlg");
  ASSERT_TRUE(SaveEdgeListFile(g, edges_path).ok());
  ASSERT_TRUE(ConvertEdgeListToRlg(edges_path, rlg_path).ok());
  auto loaded = LoadEdgeListFile(edges_path);
  ASSERT_TRUE(loaded.ok());
  MmapGraph::Options options;
  options.validate_structure = true;
  auto mapped = MmapGraph::Open(rlg_path, options);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const Graph& a = loaded.value();
  const Graph& b = mapped.value().graph();
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    ASSERT_EQ(a.EdgeSource(e), b.EdgeSource(e));
    ASSERT_EQ(a.EdgeTarget(e), b.EdgeTarget(e));
  }
  std::remove(edges_path.c_str());
  std::remove(rlg_path.c_str());
}

TEST(RlgTest, RejectsCorruptHeaders) {
  const Graph g = MakeTestGraph();
  const std::string path = TempPath("renumber_corrupt.rlg");
  ASSERT_TRUE(SaveRlgGraph(g, path).ok());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  auto write_bytes = [&](const std::string& contents) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
  };

  // Bad magic.
  std::string bad = bytes;
  bad[0] = 'X';
  write_bytes(bad);
  EXPECT_FALSE(MmapGraph::Open(path).ok());

  // Bad version (breaks the checksum too; both are rejections).
  bad = bytes;
  bad[8] = 99;
  write_bytes(bad);
  EXPECT_FALSE(MmapGraph::Open(path).ok());

  // Flipped bit inside the checksummed header region.
  bad = bytes;
  bad[40] ^= 0x10;
  write_bytes(bad);
  EXPECT_FALSE(MmapGraph::Open(path).ok());

  // Truncations at several depths, including mid-header.
  for (const size_t keep :
       {size_t{0}, size_t{17}, kRlgHeaderSize - 1, kRlgHeaderSize,
        bytes.size() / 2, bytes.size() - 1}) {
    write_bytes(bytes.substr(0, keep));
    EXPECT_FALSE(MmapGraph::Open(path).ok()) << "keep=" << keep;
  }

  // Intact file still opens.
  write_bytes(bytes);
  EXPECT_TRUE(MmapGraph::Open(path).ok());
  std::remove(path.c_str());
}

// ---- LoadEdgeListFile hardening ----------------------------------------

TEST(EdgeListLoadTest, StreamsCommentsAndBlanksAndEdges) {
  const std::string path = TempPath("renumber_edges.txt");
  {
    std::ofstream out(path);
    out << "# comment\n\n  \t\n1 2\n0 1\n2 0\n";
  }
  auto g = LoadEdgeListFile(path);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g.value().num_vertices(), 3u);
  EXPECT_EQ(g.value().num_edges(), 3u);
  std::remove(path.c_str());
}

TEST(EdgeListLoadTest, RejectsIdsThatOverflowVertexId) {
  const std::string path = TempPath("renumber_overflow.txt");
  {
    std::ofstream out(path);
    // 0xFFFFFFFF itself must be rejected: the id space max_id + 1 would
    // wrap 32-bit VertexId to zero.
    out << "0 4294967295\n";
  }
  auto g = LoadEdgeListFile(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kOutOfRange);

  {
    std::ofstream out(path);
    out << "18446744073709551615 1\n";  // 2^64 - 1
  }
  EXPECT_FALSE(LoadEdgeListFile(path).ok());

  {
    std::ofstream out(path);
    out << "1 notanumber\n";
  }
  EXPECT_FALSE(LoadEdgeListFile(path).ok());
  std::remove(path.c_str());
}

// ---- GraphStore parity -------------------------------------------------

TEST(GraphStoreTest, MappedAndInMemoryObjectivesBitExact) {
  const Graph g = MakeTestGraph(23);
  const std::string path = TempPath("renumber_store.rlg");
  ASSERT_TRUE(SaveRlgGraph(g, path).ok());
  auto store = GraphStore::OpenMapped(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(store.value().mapped());

  const Topology topology = MakeUniformTopology(4, 0.5, 2.5, 0.1);
  Rng rng(5);
  std::vector<DcId> locations(g.num_vertices());
  for (auto& l : locations) {
    l = static_cast<DcId>(rng.UniformInt(topology.num_dcs()));
  }
  std::vector<double> sizes(g.num_vertices(), 1e6);
  std::vector<DcId> masters(g.num_vertices());
  for (auto& m : masters) {
    m = static_cast<DcId>(rng.UniformInt(topology.num_dcs()));
  }
  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = 100;
  config.workload = Workload::PageRank(10);

  PartitionState in_memory(&g, &topology, &locations, &sizes, config);
  in_memory.ResetDerived(masters);
  PartitionState mapped(&store.value().graph(), &topology, &locations,
                        &sizes, config);
  mapped.ResetDerived(masters);

  const Objective a = in_memory.CurrentObjective();
  const Objective b = mapped.CurrentObjective();
  EXPECT_EQ(a.transfer_seconds, b.transfer_seconds);
  EXPECT_EQ(a.cost_dollars, b.cost_dollars);
  EXPECT_EQ(a.smooth_seconds, b.smooth_seconds);
  std::remove(path.c_str());
}

TEST(RlgTest, DualCsrBytesMatchesFormatArithmetic) {
  // 2 offset arrays (u64) + 3 id arrays (u32) + edge-id array (u64).
  EXPECT_EQ(DualCsrBytes(10, 100),
            2u * 11 * 8 + 3u * 100 * 4 + 100u * 8);
}

}  // namespace
}  // namespace rlcut
