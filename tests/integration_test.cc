// End-to-end integration tests: partition -> (optionally serialize) ->
// execute on the GAS engine -> verify results and traffic accounting.

#include <cmath>
#include <filesystem>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "baselines/extra_partitioners.h"
#include "cloud/topology.h"
#include "common/random.h"
#include "engine/gas_engine.h"
#include "engine/reference.h"
#include "engine/vertex_program.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "partition/plan_io.h"
#include "rlcut/rlcut_partitioner.h"

namespace rlcut {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : topology_(MakeEc2Topology(8, Heterogeneity::kMedium)) {
    PowerLawOptions opt;
    opt.num_vertices = 768;
    opt.num_edges = 6144;
    graph_ = GeneratePowerLaw(opt);
    locations_ = AssignGeoLocations(graph_, GeoLocatorOptions{});
    sizes_ = AssignInputSizes(graph_);
    ctx_.graph = &graph_;
    ctx_.topology = &topology_;
    ctx_.locations = &locations_;
    ctx_.input_sizes = &sizes_;
    ctx_.workload = Workload::PageRank();
    ctx_.theta = PartitionState::AutoTheta(graph_);
    double centralized = 0;
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      centralized += topology_.UploadCost(locations_[v], sizes_[v]);
    }
    ctx_.budget = 0.4 * centralized;
    ctx_.seed = 9;
  }

  Graph graph_;
  Topology topology_;
  std::vector<DcId> locations_;
  std::vector<double> sizes_;
  PartitionerContext ctx_;
};

TEST_F(IntegrationTest, EveryPartitionerYieldsExactPageRank) {
  const std::vector<double> expected = ReferencePageRank(graph_, 10);
  for (const char* name :
       {"RandPG", "HashPL", "Ginger", "Spinner", "Fennel", "Oblivious",
        "HDRF", "LDG", "Multilevel", "Annealing"}) {
    SCOPED_TRACE(name);
    auto partitioner = MakePartitionerByName(name);
    ASSERT_NE(partitioner, nullptr);
    PartitionOutput out = partitioner->RunOrDie(ctx_);
    auto program = MakePageRank(10);
    GasEngine engine(&out.state);
    const RunResult run = engine.Run(program.get());
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      ASSERT_NEAR(run.values[v], expected[v], 1e-10);
    }
  }
}

TEST_F(IntegrationTest, PageRankModelPredictionMatchesRealizedTraffic) {
  // PageRank keeps every vertex active every iteration, so the Eq. 1-5
  // model should agree with the engine's realized traffic up to the
  // vertices whose ranks converge below the change threshold early and
  // stop broadcasting (a ~10-15% effect on small graphs).
  RLCutOptions opt;
  opt.max_steps = 3;
  opt.budget = ctx_.budget;
  RLCutRunOutput out = RunRLCut(ctx_, opt);
  auto program = MakePageRank(10);
  GasEngine engine(&out.state);
  const RunResult run = engine.Run(program.get());
  const Objective predicted = out.state.CurrentObjective();
  EXPECT_NEAR(run.total_transfer_seconds, predicted.transfer_seconds,
              0.20 * predicted.transfer_seconds);
  EXPECT_NEAR(run.total_wan_bytes,
              out.state.WanBytesPerIteration() * 10.0,
              0.20 * run.total_wan_bytes);
  // The model must not under-predict: it is an upper bound on traffic.
  EXPECT_LE(run.total_transfer_seconds,
            predicted.transfer_seconds * 1.0001);
}

TEST_F(IntegrationTest, EngineTrafficAccountingIsConsistent) {
  PartitionOutput out = MakePartitionerByName("HashPL")->RunOrDie(ctx_);
  auto program = MakePageRank(6);
  GasEngine engine(&out.state);
  const RunResult run = engine.Run(program.get());
  double sum_transfer = 0;
  double sum_uplink_bytes = 0;
  double sum_cost = 0;
  for (const IterationTraffic& t : run.iterations) {
    sum_transfer += t.transfer_seconds;
    sum_cost += t.upload_cost;
    for (int r = 0; r < topology_.num_dcs(); ++r) {
      sum_uplink_bytes += t.gather_up[r] + t.apply_up[r];
    }
  }
  EXPECT_NEAR(sum_transfer, run.total_transfer_seconds, 1e-12);
  EXPECT_NEAR(sum_uplink_bytes, run.total_wan_bytes, 1e-6);
  EXPECT_NEAR(sum_cost, run.total_upload_cost, 1e-12);
}

TEST_F(IntegrationTest, PlanRoundTripPreservesEngineBehaviour) {
  RLCutOptions opt;
  opt.max_steps = 3;
  opt.budget = ctx_.budget;
  RLCutRunOutput out = RunRLCut(ctx_, opt);

  const std::string path =
      (std::filesystem::temp_directory_path() / "rlcut_integration_plan.txt")
          .string();
  ASSERT_TRUE(SavePlan(ExtractPlan(out.state), path).ok());
  Result<PartitionPlan> plan = LoadPlan(path);
  ASSERT_TRUE(plan.ok());

  PartitionConfig config;
  config.model = plan->model;
  config.theta = plan->theta;
  config.workload = ctx_.workload;
  PartitionState restored(&graph_, &topology_, &locations_, &sizes_,
                          config);
  ASSERT_TRUE(ApplyPlan(*plan, &restored).ok());

  auto p1 = MakePageRank(8);
  auto p2 = MakePageRank(8);
  GasEngine original_engine(&out.state);
  GasEngine restored_engine(&restored);
  const RunResult a = original_engine.Run(p1.get());
  const RunResult b = restored_engine.Run(p2.get());
  EXPECT_DOUBLE_EQ(a.total_transfer_seconds, b.total_transfer_seconds);
  EXPECT_DOUBLE_EQ(a.total_wan_bytes, b.total_wan_bytes);
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, ParallelEvaluateMoveMatchesSerial) {
  // EvaluateMove is documented const + thread-safe given per-thread
  // scratch; hammer it from several threads and compare with serial
  // results bit for bit.
  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = ctx_.theta;
  config.workload = ctx_.workload;
  PartitionState state(&graph_, &topology_, &locations_, &sizes_, config);
  state.ResetDerived(locations_);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::vector<Objective>> parallel_results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      EvalScratch scratch;
      Rng rng(100 + t);
      parallel_results[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        const VertexId v = static_cast<VertexId>(
            rng.UniformInt(graph_.num_vertices()));
        const DcId to = static_cast<DcId>(rng.UniformInt(8));
        parallel_results[t].push_back(state.EvaluateMove(v, to, &scratch));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    EvalScratch scratch;
    Rng rng(100 + t);
    for (int i = 0; i < kPerThread; ++i) {
      const VertexId v =
          static_cast<VertexId>(rng.UniformInt(graph_.num_vertices()));
      const DcId to = static_cast<DcId>(rng.UniformInt(8));
      const Objective serial = state.EvaluateMove(v, to, &scratch);
      EXPECT_DOUBLE_EQ(serial.transfer_seconds,
                       parallel_results[t][i].transfer_seconds);
      EXPECT_DOUBLE_EQ(serial.cost_dollars,
                       parallel_results[t][i].cost_dollars);
    }
  }
  // And the state itself is untouched.
  EXPECT_TRUE(state.CheckInvariants());
}

TEST_F(IntegrationTest, RLCutPipelineBeatsRandomEndToEnd) {
  // The headline, measured on the engine rather than the model: a
  // partitioning optimized by RLCut must realize lower transfer time
  // than random vertex-cut on the same execution.
  PartitionOutput random = MakePartitionerByName("RandPG")->RunOrDie(ctx_);
  RLCutOptions opt;
  opt.max_steps = 5;
  opt.budget = ctx_.budget;
  RLCutRunOutput ours = RunRLCut(ctx_, opt);

  auto p1 = MakePageRank(10);
  auto p2 = MakePageRank(10);
  GasEngine random_engine(&random.state);
  GasEngine our_engine(&ours.state);
  const double random_transfer =
      random_engine.Run(p1.get()).total_transfer_seconds;
  const double our_transfer =
      our_engine.Run(p2.get()).total_transfer_seconds;
  EXPECT_LT(our_transfer, 0.8 * random_transfer);
}

}  // namespace
}  // namespace rlcut
