// Differential tests: algorithm results must be identical across
// compute models (hybrid / vertex / edge-cut), placements, and timing
// models; only the traffic/time accounting may differ.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "cloud/topology.h"
#include "common/random.h"
#include "engine/gas_engine.h"
#include "engine/reference.h"
#include "engine/vertex_program.h"
#include "graph/generators.h"

namespace rlcut {
namespace {

struct ModelParam {
  ComputeModel model;
  const char* program;  // "PR", "SSSP", "WSSSP", "SI"
};

class EngineModelTest : public ::testing::TestWithParam<ModelParam> {
 protected:
  EngineModelTest() : topology_(MakeEc2Topology(4, Heterogeneity::kHigh)) {
    PowerLawOptions opt;
    opt.num_vertices = 384;
    opt.num_edges = 3072;
    graph_ = GeneratePowerLaw(opt);
    locations_.resize(graph_.num_vertices());
    Rng rng(17);
    for (auto& l : locations_) l = static_cast<DcId>(rng.UniformInt(4));
    sizes_.assign(graph_.num_vertices(), 1e6);
  }

  PartitionState MakeState(ComputeModel model) {
    PartitionConfig config;
    config.model = model;
    config.theta = 8;
    PartitionState state(&graph_, &topology_, &locations_, &sizes_,
                         config);
    if (model == ComputeModel::kVertexCut) {
      // Random explicit edge placement; masters stay home.
      state.ResetUnplaced(locations_);
      Rng rng(23);
      for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
        state.PlaceEdge(e, static_cast<DcId>(rng.UniformInt(4)));
      }
    } else {
      std::vector<DcId> masters(graph_.num_vertices());
      for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
        masters[v] = static_cast<DcId>(HashU64(v) % 4);
      }
      state.ResetDerived(masters);
    }
    return state;
  }

  std::unique_ptr<VertexProgram> MakeProgram() const {
    const std::string name = GetParam().program;
    if (name == "PR") return MakePageRank(8);
    if (name == "SSSP") return MakeSssp(2);
    if (name == "WSSSP") return MakeWeightedSssp(2, 4);
    return MakeSubgraphIsomorphism({0, 1, 2}, 3);
  }

  std::vector<double> Reference() const {
    const std::string name = GetParam().program;
    if (name == "PR") return ReferencePageRank(graph_, 8);
    if (name == "SSSP") return ReferenceSssp(graph_, 2);
    if (name == "WSSSP") return ReferenceWeightedSssp(graph_, 2, 4);
    // SI: per-vertex final counts from the reference recurrence are not
    // exposed; compare aggregate instead (see test body).
    return {};
  }

  Graph graph_;
  Topology topology_;
  std::vector<DcId> locations_;
  std::vector<double> sizes_;
};

TEST_P(EngineModelTest, ResultsExactUnderEveryComputeModel) {
  PartitionState state = MakeState(GetParam().model);
  auto program = MakeProgram();
  GasEngine engine(&state);
  const RunResult run = engine.Run(program.get());

  if (std::string(GetParam().program) == "SI") {
    double got = 0;
    for (double c : run.values) got += c;
    EXPECT_DOUBLE_EQ(got,
                     ReferencePathMatchCount(graph_, {0, 1, 2}, 3));
    return;
  }
  const std::vector<double> expected = Reference();
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(run.values[v])) << "vertex " << v;
    } else {
      ASSERT_NEAR(run.values[v], expected[v], 1e-10) << "vertex " << v;
    }
  }
}

TEST_P(EngineModelTest, FlowLevelTimingPreservesResults) {
  PartitionState state = MakeState(GetParam().model);
  auto p1 = MakeProgram();
  auto p2 = MakeProgram();
  GasEngine closed(&state, {TimingModel::kClosedForm});
  GasEngine flow(&state, {TimingModel::kFlowLevel});
  const RunResult a = closed.Run(p1.get());
  const RunResult b = flow.Run(p2.get());
  ASSERT_EQ(a.values.size(), b.values.size());
  for (size_t i = 0; i < a.values.size(); ++i) {
    if (std::isinf(a.values[i])) {
      EXPECT_TRUE(std::isinf(b.values[i]));
    } else {
      EXPECT_DOUBLE_EQ(a.values[i], b.values[i]);
    }
  }
  // Same messages, same WAN bytes; only the time pricing may differ.
  EXPECT_DOUBLE_EQ(a.total_wan_bytes, b.total_wan_bytes);
  EXPECT_EQ(a.iterations_executed, b.iterations_executed);
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAndPrograms, EngineModelTest,
    ::testing::Values(ModelParam{ComputeModel::kHybridCut, "PR"},
                      ModelParam{ComputeModel::kVertexCut, "PR"},
                      ModelParam{ComputeModel::kEdgeCut, "PR"},
                      ModelParam{ComputeModel::kHybridCut, "SSSP"},
                      ModelParam{ComputeModel::kVertexCut, "SSSP"},
                      ModelParam{ComputeModel::kEdgeCut, "SSSP"},
                      ModelParam{ComputeModel::kHybridCut, "WSSSP"},
                      ModelParam{ComputeModel::kEdgeCut, "WSSSP"},
                      ModelParam{ComputeModel::kHybridCut, "SI"},
                      ModelParam{ComputeModel::kVertexCut, "SI"},
                      ModelParam{ComputeModel::kEdgeCut, "SI"}),
    [](const ::testing::TestParamInfo<ModelParam>& info) {
      std::string name = info.param.program;
      switch (info.param.model) {
        case ComputeModel::kHybridCut:
          name += "_hybrid";
          break;
        case ComputeModel::kVertexCut:
          name += "_vertex";
          break;
        case ComputeModel::kEdgeCut:
          name += "_edge";
          break;
      }
      return name;
    });

}  // namespace
}  // namespace rlcut
