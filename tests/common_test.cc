#include <atomic>
#include <cmath>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table_writer.h"
#include "common/thread_pool.h"

namespace rlcut {
namespace {

// ---- Status / Result ---------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad theta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad theta");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Status Inner(bool fail) {
  if (fail) return Status::IoError("inner failed");
  return Status::Ok();
}

Status Outer(bool fail) {
  RLCUT_RETURN_IF_ERROR(Inner(fail));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Outer(false).ok());
  EXPECT_EQ(Outer(true).code(), StatusCode::kIoError);
}

// ---- Rng ----------------------------------------------------------------

TEST(RngTest, DeterministicBySeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.UniformDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, SampleDiscreteRespectsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.SampleDiscrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 20000.0, 0.75, 0.02);
}

TEST(RngTest, SampleDiscreteAllZeroFallsBackToUniform) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 0.0};
  std::set<size_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.SampleDiscrete(weights));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(RngTest, ZipfSkewsTowardSmallValues) {
  Rng rng(19);
  const uint64_t n = 1000;
  int small = 0;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t x = rng.Zipf(n, 2.0);
    ASSERT_LT(x, n);
    if (x < 10) ++small;
  }
  // Zipf(2) concentrates the bulk of its mass on the first few values.
  EXPECT_GT(small, 7000);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---- FlagParser ----------------------------------------------------------

TEST(FlagParserTest, ParsesAllTypes) {
  FlagParser flags;
  flags.DefineInt("n", 5, "count");
  flags.DefineDouble("rate", 0.5, "rate");
  flags.DefineBool("verbose", false, "verbosity");
  flags.DefineString("graph", "LJ", "dataset");
  const char* argv[] = {"prog", "--n=10", "--rate", "0.25", "--verbose",
                        "--graph=TW"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("n"), 10);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.25);
  EXPECT_TRUE(flags.GetBool("verbose"));
  EXPECT_EQ(flags.GetString("graph"), "TW");
}

TEST(FlagParserTest, RejectsUnknownFlag) {
  FlagParser flags;
  flags.DefineInt("n", 5, "count");
  const char* argv[] = {"prog", "--unknown=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagParserTest, RejectsBadValue) {
  FlagParser flags;
  flags.DefineInt("n", 5, "count");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagParserTest, HelpRequested) {
  FlagParser flags;
  flags.DefineInt("n", 5, "count");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_TRUE(flags.help_requested());
  EXPECT_NE(flags.Usage("prog").find("--n"), std::string::npos);
}

TEST(FlagParserTest, DefaultsSurviveNoArgs) {
  FlagParser flags;
  flags.DefineString("graph", "LJ", "dataset");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetString("graph"), "LJ");
}

// ---- TableWriter ----------------------------------------------------------

TEST(TableWriterTest, PrintsAlignedTable) {
  TableWriter t({"Graph", "Time"});
  t.AddRow({"LJ", Fmt(1.5)});
  t.AddRow({"Twitter", Fmt(2.0)});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Graph"), std::string::npos);
  EXPECT_NE(out.find("Twitter"), std::string::npos);
  EXPECT_NE(out.find("1.500"), std::string::npos);
}

TEST(TableWriterTest, CsvFormat) {
  TableWriter t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableWriterTest, FmtVariants) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(static_cast<int64_t>(-5)), "-5");
  EXPECT_EQ(Fmt(static_cast<uint64_t>(7)), "7");
}

// ---- RunningStats -----------------------------------------------------------

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0);
  EXPECT_EQ(s.cv(), 0);
}

TEST(Pow2HistogramTest, Buckets) {
  Pow2Histogram h;
  h.Add(0);
  h.Add(1);
  h.Add(2);
  h.Add(3);
  h.Add(4);
  h.Add(1000);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.buckets()[0], 2u);  // {0,1}
  EXPECT_EQ(h.buckets()[1], 2u);  // {2,3}
  EXPECT_EQ(h.buckets()[2], 1u);  // {4..7}
  EXPECT_EQ(h.buckets()[9], 1u);  // {512..1023}
}

// ---- ThreadPool -----------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunkedSlotsDisjoint) {
  ThreadPool pool(4);
  std::vector<int> owner(100, -1);
  pool.ParallelForChunked(100, [&owner](size_t begin, size_t end,
                                        size_t slot) {
    for (size_t i = begin; i < end; ++i) owner[i] = static_cast<int>(slot);
  });
  for (int o : owner) EXPECT_GE(o, 0);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace rlcut
