#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "fault/fault.h"

namespace rlcut {
namespace {

fault::FaultSchedule MustParse(const std::string& spec) {
  fault::FaultSchedule schedule;
  std::string error;
  EXPECT_TRUE(fault::FaultSchedule::Parse(spec, /*seed=*/1, &schedule,
                                          &error))
      << error;
  return schedule;
}

class ThreadPoolTest : public ::testing::Test {
 protected:
  ThreadPoolTest() { fault::Disarm(); }
  ~ThreadPoolTest() override { fault::Disarm(); }
};

TEST_F(ThreadPoolTest, ThrowingTaskIsCapturedAndPoolStaysUsable) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([] { throw std::runtime_error("task boom"); }));
  ASSERT_TRUE(pool.Submit([&] { ++ran; }));
  pool.Wait();

  std::exception_ptr error = pool.TakeError();
  ASSERT_NE(error, nullptr);
  try {
    std::rethrow_exception(error);
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task boom");
  }
  EXPECT_EQ(pool.TakeError(), nullptr);  // slot cleared
  EXPECT_EQ(pool.errors_seen(), 1u);

  // The pool keeps serving after the failure.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(pool.Submit([&] { ++ran; }));
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 65);
}

TEST_F(ThreadPoolTest, ParallelForRethrowsTheFirstTaskError) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.ParallelFor(128,
                       [](size_t i) {
                         if (i == 77) throw std::runtime_error("index 77");
                       }),
      std::runtime_error);
  // The error does not poison later batches.
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST_F(ThreadPoolTest, SubmitDuringShutdownIsRejectedNotFatal) {
  std::optional<ThreadPool> pool(std::in_place, 2);
  std::atomic<bool> release{false};
  std::atomic<bool> saw_reject{false};
  // Blocks the destructor's join until the submitter has observed the
  // rejected Submit, guaranteeing the race actually happens.
  ASSERT_TRUE(pool->Submit([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }));
  std::thread submitter([&] {
    while (pool->Submit([] {})) {
      std::this_thread::yield();
    }
    saw_reject = true;
    release = true;
  });
  pool.reset();  // destructor runs concurrently with the Submit loop
  submitter.join();
  EXPECT_TRUE(saw_reject.load());
}

TEST_F(ThreadPoolTest, TaskOutlivingShutdownStillCompletes) {
  std::atomic<bool> finished{false};
  {
    ThreadPool pool(2);
    ASSERT_TRUE(pool.Submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      finished = true;
    }));
    // Destructor must drain the queue, not drop the sleeping task.
  }
  EXPECT_TRUE(finished.load());
}

TEST_F(ThreadPoolTest, InjectedTaskThrowSurfacesThroughParallelFor) {
  fault::Arm(MustParse("threadpool.task_throw:nth=1"));
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(16, [](size_t) {}),
               fault::InjectedFault);
  fault::Disarm();
  // Subsequent parallel loops run clean.
  std::atomic<size_t> count{0};
  pool.ParallelFor(16, [&](size_t) { ++count; });
  EXPECT_EQ(count.load(), 16u);
}

TEST_F(ThreadPoolTest, CrashedWorkerIsReplacedAndCapacitySurvives) {
  fault::Arm(MustParse("threadpool.worker_crash:nth=2,max=1"));
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Submit([&] { ++ran; }));
  }
  pool.Wait();
  // The crashed worker dropped exactly one task and recorded the error.
  EXPECT_EQ(ran.load(), 7);
  EXPECT_EQ(fault::FireCount("threadpool.worker_crash"), 1u);
  std::exception_ptr error = pool.TakeError();
  ASSERT_NE(error, nullptr);
  EXPECT_THROW(std::rethrow_exception(error), fault::InjectedFault);
  fault::Disarm();

  // The replacement worker restores full two-thread capacity: two
  // concurrent barrier tasks can only finish if both workers are alive.
  EXPECT_EQ(pool.num_threads(), 2u);
  std::atomic<int> arrivals{0};
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(pool.Submit([&] {
      ++arrivals;
      while (arrivals.load() < 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }));
  }
  pool.Wait();
  EXPECT_EQ(arrivals.load(), 2);
}

TEST_F(ThreadPoolTest, WorkerStallDelaysButDoesNotDropTasks) {
  fault::Arm(MustParse("threadpool.worker_stall:nth=1,amount=20"));
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.Submit([&] { ++ran; }));
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 4);
  EXPECT_EQ(pool.TakeError(), nullptr);
  EXPECT_EQ(fault::FireCount("threadpool.worker_stall"), 1u);
}

}  // namespace
}  // namespace rlcut
