#include <cstdlib>

#include <gtest/gtest.h>

#include "check/invariants.h"
#include "cloud/topology.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "rlcut/rlcut_partitioner.h"
#include "rlcut/trainer.h"

namespace rlcut {
namespace {

// Long random walks over the mutation API with the full from-scratch
// consistency check sampled along the way: the integration-level net
// under the targeted oracle tests.
class InvariantWalkTest : public ::testing::Test {
 protected:
  InvariantWalkTest() : topology_(MakeEc2Topology(5, Heterogeneity::kHigh)) {
    PowerLawOptions opt;
    opt.num_vertices = 256;
    opt.num_edges = 1536;
    opt.seed = 3;
    graph_ = GeneratePowerLaw(opt);
    GeoLocatorOptions geo;
    geo.num_dcs = topology_.num_dcs();
    locations_ = AssignGeoLocations(graph_, geo);
    sizes_ = AssignInputSizes(graph_);
  }

  PartitionState MakeState(ComputeModel model) const {
    PartitionConfig config;
    config.model = model;
    config.theta = PartitionState::AutoTheta(graph_);
    PartitionState state(&graph_, &topology_, &locations_, &sizes_,
                         config);
    return state;
  }

  Graph graph_;
  Topology topology_;
  std::vector<DcId> locations_;
  std::vector<double> sizes_;
};

TEST_F(InvariantWalkTest, DerivedPlacementRandomWalk) {
  for (ComputeModel model :
       {ComputeModel::kHybridCut, ComputeModel::kEdgeCut}) {
    PartitionState state = MakeState(model);
    state.ResetDerived(locations_);
    ASSERT_TRUE(state.CheckInvariants());
    Rng rng(17);
    for (int move = 0; move < 400; ++move) {
      const VertexId v =
          static_cast<VertexId>(rng.UniformInt(graph_.num_vertices()));
      state.MoveMaster(v, static_cast<DcId>(rng.UniformInt(5)));
      if (move % 50 == 49) {
        ASSERT_TRUE(state.CheckInvariants());
      }
    }
    EXPECT_TRUE(state.CheckInvariants());
  }
}

TEST_F(InvariantWalkTest, ExplicitPlacementRandomWalk) {
  PartitionState state = MakeState(ComputeModel::kVertexCut);
  state.ResetUnplaced(locations_);
  ASSERT_TRUE(state.CheckInvariants());
  Rng rng(29);
  for (int move = 0; move < 400; ++move) {
    if (rng.UniformInt(3) != 0) {
      const EdgeId e = rng.UniformInt(graph_.num_edges());
      state.PlaceEdge(e, static_cast<DcId>(rng.UniformInt(5)));
    } else {
      const VertexId v =
          static_cast<VertexId>(rng.UniformInt(graph_.num_vertices()));
      state.SetMaster(v, static_cast<DcId>(rng.UniformInt(5)));
    }
    if (move % 50 == 49) {
      ASSERT_TRUE(state.CheckInvariants());
    }
  }
  EXPECT_TRUE(state.CheckInvariants());
}

TEST_F(InvariantWalkTest, WalkAcrossTopologyUpdates) {
  // Re-pricing mid-walk (the dynamic-environment path) must leave the
  // state as consistent as a cold rebuild under the new topology.
  PartitionState state = MakeState(ComputeModel::kHybridCut);
  state.ResetDerived(locations_);
  Topology degraded = MakeEc2Topology(5, Heterogeneity::kLow);
  Rng rng(31);
  for (int move = 0; move < 200; ++move) {
    const VertexId v =
        static_cast<VertexId>(rng.UniformInt(graph_.num_vertices()));
    state.MoveMaster(v, static_cast<DcId>(rng.UniformInt(5)));
    if (move == 100) {
      state.UpdateTopology(&degraded);
      ASSERT_TRUE(state.CheckInvariants());
    }
  }
  EXPECT_TRUE(state.CheckInvariants());
}

TEST(InvariantTrainerTest, TrainerRunsWithSampledInvariantChecks) {
  // End-to-end: RLCUT_DEBUG_INVARIANTS=2 audits every other trainer
  // step; a consistent implementation finishes without aborting.
  PowerLawOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 2048;
  Graph graph = GeneratePowerLaw(opt);
  Topology topology = MakeEc2Topology(4, Heterogeneity::kMedium);
  GeoLocatorOptions geo;
  geo.num_dcs = topology.num_dcs();
  std::vector<DcId> locations = AssignGeoLocations(graph, geo);
  std::vector<double> sizes = AssignInputSizes(graph);
  PartitionConfig config;
  config.theta = PartitionState::AutoTheta(graph);
  PartitionState state(&graph, &topology, &locations, &sizes, config);
  state.ResetDerived(locations);

  ASSERT_EQ(::setenv("RLCUT_DEBUG_INVARIANTS", "2", 1), 0);
  EXPECT_TRUE(check::DebugInvariantsEnabled());
  RLCutOptions options;
  options.max_steps = 4;
  options.batch_size = 32;
  options.num_threads = 2;
  options.seed = 13;
  RLCutTrainer trainer(options);
  const TrainResult result = trainer.Train(&state);
  ::unsetenv("RLCUT_DEBUG_INVARIANTS");
  EXPECT_FALSE(result.steps.empty());
  EXPECT_TRUE(state.CheckInvariants());
}

}  // namespace
}  // namespace rlcut
