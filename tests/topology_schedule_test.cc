#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/flow_simulator.h"
#include "cloud/topology.h"
#include "cloud/topology_schedule.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "partition/partition_state.h"

namespace rlcut {
namespace {

Topology Base() { return MakeUniformTopology(4, 1.0, 2.0, 0.10); }

TopologyEvent BandwidthEvent(int step, DcId dc, double up, double down) {
  TopologyEvent e;
  e.step = step;
  e.dc = dc;
  e.kind = TopologyEventKind::kBandwidthScale;
  e.uplink_factor = up;
  e.downlink_factor = down;
  return e;
}

TopologyEvent PriceEvent(int step, DcId dc, double factor) {
  TopologyEvent e;
  e.step = step;
  e.dc = dc;
  e.kind = TopologyEventKind::kPriceScale;
  e.price_factor = factor;
  return e;
}

TopologyEvent OutageEvent(int step, DcId dc) {
  TopologyEvent e;
  e.step = step;
  e.dc = dc;
  e.kind = TopologyEventKind::kOutage;
  return e;
}

TopologyEvent RestoreEvent(int step, DcId dc) {
  TopologyEvent e;
  e.step = step;
  e.dc = dc;
  e.kind = TopologyEventKind::kRestore;
  return e;
}

// RAII temp file for the loader tests.
class TempFile {
 public:
  explicit TempFile(const std::string& contents) {
    path_ = ::testing::TempDir() + "/sched_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".txt";
    std::ofstream out(path_);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(TopologyScheduleTest, EmptyScheduleIsTheBaseEverywhere) {
  TopologySchedule schedule(Base());
  EXPECT_TRUE(schedule.Validate().ok());
  const Topology at0 = schedule.EffectiveAt(0);
  const Topology at100 = schedule.EffectiveAt(100);
  for (DcId r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(at0.Uplink(r), 1.0);
    EXPECT_DOUBLE_EQ(at100.Downlink(r), 2.0);
    EXPECT_DOUBLE_EQ(at100.Price(r), 0.10);
  }
  EXPECT_FALSE(schedule.ChangedBetween(0, 1000));
  EXPECT_EQ(schedule.NextEventAfter(0), -1);
}

TEST(TopologyScheduleTest, EventAppliesFromItsStepOnward) {
  TopologySchedule schedule(Base(), {BandwidthEvent(5, 1, 0.5, 0.25)});
  EXPECT_DOUBLE_EQ(schedule.EffectiveAt(4).Uplink(1), 1.0);
  EXPECT_DOUBLE_EQ(schedule.EffectiveAt(5).Uplink(1), 0.5);
  EXPECT_DOUBLE_EQ(schedule.EffectiveAt(5).Downlink(1), 0.5);  // 2.0 * 0.25
  EXPECT_DOUBLE_EQ(schedule.EffectiveAt(99).Uplink(1), 0.5);
  // Other DCs and the price are untouched.
  EXPECT_DOUBLE_EQ(schedule.EffectiveAt(5).Uplink(0), 1.0);
  EXPECT_DOUBLE_EQ(schedule.EffectiveAt(5).Price(1), 0.10);
}

TEST(TopologyScheduleTest, LastEventWinsFactorsDoNotCompound) {
  TopologySchedule schedule(
      Base(), {BandwidthEvent(1, 0, 0.5, 0.5), BandwidthEvent(2, 0, 0.8,
                                                              0.8)});
  // Set-to-base semantics: 0.8, not 0.5 * 0.8.
  EXPECT_DOUBLE_EQ(schedule.EffectiveAt(2).Uplink(0), 0.8);
}

TEST(TopologyScheduleTest, EventsAreSortedByStep) {
  TopologySchedule schedule(
      Base(), {BandwidthEvent(9, 0, 0.8, 0.8), BandwidthEvent(2, 0, 0.5,
                                                              0.5)});
  EXPECT_EQ(schedule.events().front().step, 2);
  EXPECT_EQ(schedule.NextEventAfter(0), 2);
  EXPECT_EQ(schedule.NextEventAfter(2), 9);
  EXPECT_EQ(schedule.NextEventAfter(9), -1);
  EXPECT_TRUE(schedule.ChangedBetween(0, 2));
  EXPECT_FALSE(schedule.ChangedBetween(2, 8));
  EXPECT_TRUE(schedule.ChangedBetween(8, 9));
}

TEST(TopologyScheduleTest, OutageThrottlesAndRestoreRecovers) {
  TopologySchedule schedule(Base(), {OutageEvent(3, 2), RestoreEvent(7, 2)});
  const Topology during = schedule.EffectiveAt(3);
  EXPECT_DOUBLE_EQ(during.Uplink(2), kOutageBandwidthFactor * 1.0);
  EXPECT_DOUBLE_EQ(during.Downlink(2), kOutageBandwidthFactor * 2.0);
  const Topology after = schedule.EffectiveAt(7);
  EXPECT_DOUBLE_EQ(after.Uplink(2), 1.0);
  EXPECT_DOUBLE_EQ(after.Downlink(2), 2.0);
  // An outage still validates: bandwidths stay positive.
  EXPECT_TRUE(schedule.Validate().ok());
}

TEST(TopologyScheduleTest, AllDcsEventAppliesEverywhere) {
  TopologySchedule schedule(Base(), {PriceEvent(0, kAllDcs, 3.0)});
  const Topology at0 = schedule.EffectiveAt(0);
  for (DcId r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(at0.Price(r), 0.30);
  }
}

TEST(TopologyScheduleTest, ValidateRejectsBadEvents) {
  EXPECT_FALSE(
      TopologySchedule(Base(), {BandwidthEvent(0, 9, 0.5, 0.5)})  // bad DC
          .Validate()
          .ok());
  EXPECT_FALSE(
      TopologySchedule(Base(), {BandwidthEvent(0, 0, 0.0, 1.0)})  // zero bw
          .Validate()
          .ok());
  EXPECT_FALSE(
      TopologySchedule(Base(), {BandwidthEvent(-1, 0, 0.5, 0.5)})  // step<0
          .Validate()
          .ok());
}

TEST(TopologyScheduleTest, DriftAndChangedMask) {
  TopologySchedule schedule(Base(), {BandwidthEvent(0, 1, 0.5, 1.0)});
  const Topology effective = schedule.EffectiveAt(0);
  // Only DC 1's uplink changed, by 50%.
  EXPECT_NEAR(TopologyDrift(Base(), effective), 0.5, 1e-12);
  EXPECT_EQ(ChangedDcMask(Base(), effective, 0.01), uint64_t{1} << 1);
  EXPECT_EQ(ChangedDcMask(Base(), effective, 0.9), 0u);
  EXPECT_DOUBLE_EQ(TopologyDrift(Base(), Base()), 0.0);
}

TEST(TopologyScheduleTest, DiurnalPresetDriftsAndValidates) {
  const TopologySchedule schedule =
      MakeDiurnalDriftSchedule(Base(), /*period_steps=*/8, /*amplitude=*/0.3,
                               /*horizon_steps=*/24);
  EXPECT_TRUE(schedule.Validate().ok());
  EXPECT_FALSE(schedule.events().empty());
  // Bandwidths oscillate around the base within the amplitude band.
  for (int step = 0; step < 24; ++step) {
    const Topology t = schedule.EffectiveAt(step);
    for (DcId r = 0; r < 4; ++r) {
      EXPECT_GE(t.Uplink(r), 1.0 * (1 - 0.3) - 1e-9);
      EXPECT_LE(t.Uplink(r), 1.0 * (1 + 0.3) + 1e-9);
    }
  }
  // It actually moves at some point.
  double max_seen = 0;
  for (int step = 0; step < 24; ++step) {
    max_seen = std::max(max_seen,
                        TopologyDrift(Base(), schedule.EffectiveAt(step)));
  }
  EXPECT_GT(max_seen, 0.1);
}

TEST(TopologyScheduleTest, BrownoutPresetDegradesThenRecovers) {
  const TopologySchedule schedule =
      MakeBrownoutSchedule(Base(), /*dc=*/2, /*start_step=*/10,
                           /*end_step=*/20, /*bandwidth_factor=*/0.5);
  EXPECT_TRUE(schedule.Validate().ok());
  EXPECT_DOUBLE_EQ(schedule.EffectiveAt(9).Uplink(2), 1.0);
  EXPECT_DOUBLE_EQ(schedule.EffectiveAt(10).Uplink(2), 0.5);
  EXPECT_DOUBLE_EQ(schedule.EffectiveAt(19).Uplink(2), 0.5);
  EXPECT_DOUBLE_EQ(schedule.EffectiveAt(20).Uplink(2), 1.0);
}

TEST(TopologyScheduleTest, FlowSimulatorConsumesEffectiveTopology) {
  TopologySchedule schedule(MakeUniformTopology(2, 0.5, 2.5, 0.1),
                            {BandwidthEvent(5, 0, 0.5, 1.0)});
  // Base: 1 GB over a 0.5 GB/s uplink takes 2 s. After the event the
  // uplink halves and the same transfer takes 4 s.
  const Topology before = schedule.EffectiveAt(0);
  const Topology after = schedule.EffectiveAt(5);
  EXPECT_NEAR(FlowSimulator(&before).SimulateMakespan({{0, 1, 1e9}}), 2.0,
              1e-9);
  EXPECT_NEAR(FlowSimulator(&after).SimulateMakespan({{0, 1, 1e9}}), 4.0,
              1e-9);
}

TEST(TopologyScheduleTest, UpdateTopologyRepricesState) {
  PowerLawOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 2048;
  const Graph graph = GeneratePowerLaw(opt);
  GeoLocatorOptions geo;
  geo.num_dcs = 4;
  const std::vector<DcId> locations = AssignGeoLocations(graph, geo);
  const std::vector<double> sizes = AssignInputSizes(graph);

  const Topology base = Base();
  TopologySchedule schedule(base, {PriceEvent(0, kAllDcs, 2.0)});
  const Topology pricier = schedule.EffectiveAt(0);

  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = PartitionState::AutoTheta(graph);
  config.workload = Workload::PageRank();
  PartitionState state(&graph, &base, &locations, &sizes, config);
  state.ResetDerived(locations);
  // Move a few masters off their initial location so move cost is > 0.
  for (VertexId v = 0; v < 16; ++v) {
    state.MoveMaster(v, (locations[v] + 1) % 4);
  }
  const Objective before = state.CurrentObjective();
  ASSERT_GT(before.cost_dollars, 0.0);

  state.UpdateTopology(&pricier);
  const Objective after = state.CurrentObjective();
  EXPECT_TRUE(state.CheckInvariants());
  // Doubling every upload price doubles the dollar objective; the
  // bandwidths are unchanged so transfer time is identical.
  EXPECT_NEAR(after.cost_dollars, 2.0 * before.cost_dollars,
              1e-9 * before.cost_dollars);
  EXPECT_DOUBLE_EQ(after.transfer_seconds, before.transfer_seconds);

  state.UpdateTopology(&base);
  const Objective restored = state.CurrentObjective();
  EXPECT_NEAR(restored.cost_dollars, before.cost_dollars,
              1e-12 + 1e-9 * before.cost_dollars);
}

TEST(TopologyScheduleTest, LoadParsesAllEventKinds) {
  TempFile file(
      "rlcut-net-schedule v1\n"
      "# a comment\n"
      "5 1 bandwidth 0.5 0.25\n"
      "6 * price 2.0\n"
      "7 2 outage\n"
      "9 2 restore\n");
  Result<TopologySchedule> schedule = LoadTopologySchedule(file.path(),
                                                           Base());
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  ASSERT_EQ(schedule->events().size(), 4u);
  EXPECT_DOUBLE_EQ(schedule->EffectiveAt(5).Uplink(1), 0.5);
  EXPECT_DOUBLE_EQ(schedule->EffectiveAt(6).Price(3), 0.20);
  EXPECT_DOUBLE_EQ(schedule->EffectiveAt(8).Uplink(2),
                   kOutageBandwidthFactor);
  EXPECT_DOUBLE_EQ(schedule->EffectiveAt(9).Uplink(2), 1.0);
}

TEST(TopologyScheduleTest, LoadRejectsMalformedInput) {
  {
    TempFile file("not-a-schedule\n");
    EXPECT_FALSE(LoadTopologySchedule(file.path(), Base()).ok());
  }
  {
    TempFile file("rlcut-net-schedule v1\n5 1 teleport 0.5\n");
    EXPECT_FALSE(LoadTopologySchedule(file.path(), Base()).ok());
  }
  {
    TempFile file("rlcut-net-schedule v1\n5 99 outage\n");  // bad DC
    EXPECT_FALSE(LoadTopologySchedule(file.path(), Base()).ok());
  }
  {
    TempFile file("rlcut-net-schedule v1\nfive 1 outage\n");  // bad step
    EXPECT_FALSE(LoadTopologySchedule(file.path(), Base()).ok());
  }
  {
    TempFile file("rlcut-net-schedule v1\n5 1 bandwidth 0.5\n");  // missing
    EXPECT_FALSE(LoadTopologySchedule(file.path(), Base()).ok());
  }
  EXPECT_FALSE(LoadTopologySchedule("/nonexistent/sched.txt", Base()).ok());
}

}  // namespace
}  // namespace rlcut
