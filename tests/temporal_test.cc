#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/temporal.h"

namespace rlcut {
namespace {

TEST(TemporalGraphTest, PrefixAndSnapshot) {
  std::vector<TimedEdge> edges = {
      {{0, 1}, 1.0}, {{1, 2}, 2.0}, {{2, 3}, 3.0}, {{3, 0}, 4.0}};
  TemporalGraph tg(4, edges);
  EXPECT_EQ(tg.CountBefore(2.5), 2u);
  Graph g = tg.SnapshotBefore(2.5);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(tg.Prefix(3).num_edges(), 3u);
  EXPECT_EQ(tg.Prefix(0).num_edges(), 0u);
}

TEST(TemporalGraphTest, WindowExtraction) {
  std::vector<TimedEdge> edges = {
      {{0, 1}, 0.5}, {{1, 2}, 1.5}, {{2, 3}, 2.5}, {{3, 0}, 3.5}};
  TemporalGraph tg(4, edges);
  std::vector<Edge> window = tg.EdgesInWindow(1.0, 3.0);
  ASSERT_EQ(window.size(), 2u);
  EXPECT_EQ(window[0], (Edge{1, 2}));
  EXPECT_EQ(window[1], (Edge{2, 3}));
}

TEST(TemporalGraphTest, WindowCounts) {
  std::vector<TimedEdge> edges = {
      {{0, 1}, 0.1}, {{1, 2}, 0.2}, {{2, 3}, 1.1}, {{3, 0}, 2.9}};
  TemporalGraph tg(4, edges);
  std::vector<uint64_t> counts = tg.WindowCounts(3.0, 1.0);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(DiurnalStreamTest, RateRatioNearTarget) {
  TemporalStreamOptions opt;
  opt.num_vertices = 1024;
  opt.num_edges = 1 << 16;
  opt.peak_to_trough = 8.0;
  TemporalGraph tg = GenerateDiurnalStream(opt);
  EXPECT_EQ(tg.edges().size(), opt.num_edges);
  std::vector<uint64_t> hourly =
      tg.WindowCounts(opt.horizon_seconds, 3600.0);
  ASSERT_EQ(hourly.size(), 24u);
  const uint64_t max_rate = *std::max_element(hourly.begin(), hourly.end());
  const uint64_t min_rate = *std::min_element(hourly.begin(), hourly.end());
  ASSERT_GT(min_rate, 0u);
  const double ratio =
      static_cast<double>(max_rate) / static_cast<double>(min_rate);
  // The paper observes 5-10x (Fig. 4); the generator targets 8x.
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 14.0);
}

TEST(DiurnalStreamTest, TimestampsSortedAndInHorizon) {
  TemporalStreamOptions opt;
  opt.num_edges = 4096;
  TemporalGraph tg = GenerateDiurnalStream(opt);
  SimTime prev = 0;
  for (const TimedEdge& e : tg.edges()) {
    EXPECT_GE(e.time, prev);
    EXPECT_LT(e.time, SimTime(opt.horizon_seconds));
    prev = e.time;
  }
}

TEST(SplitEdgesTest, FractionRespected) {
  Graph g = GenerateRing(100, 2);  // 200 edges
  GraphSplit split = SplitEdges(g, 0.7, 42);
  EXPECT_EQ(split.initial_edges.size(), 140u);
  EXPECT_EQ(split.remaining_edges.size(), 60u);
}

TEST(SplitEdgesTest, UnionIsOriginalEdgeSet) {
  Graph g = GenerateRing(50, 1);
  GraphSplit split = SplitEdges(g, 0.5, 7);
  std::vector<Edge> all = split.initial_edges;
  all.insert(all.end(), split.remaining_edges.begin(),
             split.remaining_edges.end());
  EXPECT_EQ(all.size(), g.num_edges());
  auto key = [](const Edge& e) {
    return (static_cast<uint64_t>(e.src) << 32) | e.dst;
  };
  std::vector<uint64_t> got;
  for (const Edge& e : all) got.push_back(key(e));
  std::vector<uint64_t> want;
  for (EdgeId e = 0; e < g.num_edges(); ++e) want.push_back(key(g.GetEdge(e)));
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace rlcut
