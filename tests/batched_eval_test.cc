// Batch-vs-single equivalence for the all-destination what-if API:
// EvaluateMoveAll / EvaluatePlaceEdgeAll must agree with a loop of
// single-destination EvaluateMove / EvaluatePlaceEdge calls on every
// compute model, including high- and low-degree movers, self-loops,
// the from==to entry, and re-priced (UpdateTopology) states. Exact
// bit-equality is only guaranteed on dyadic instances (the oracle's
// lane covers those); the realistic fixtures here use a relative
// tolerance to absorb benign regrouping ulps.

#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "check/invariants.h"
#include "cloud/topology.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "partition/partition_state.h"
#include "rlcut/rlcut_partitioner.h"
#include "rlcut/trainer.h"

namespace rlcut {
namespace {

void ExpectNear(const Objective& batched, const Objective& single,
                const char* what) {
  const double tol = 1e-9;
  EXPECT_NEAR(batched.transfer_seconds, single.transfer_seconds,
              tol * (1.0 + std::fabs(single.transfer_seconds)))
      << what;
  EXPECT_NEAR(batched.cost_dollars, single.cost_dollars,
              tol * (1.0 + std::fabs(single.cost_dollars)))
      << what;
  EXPECT_NEAR(batched.smooth_seconds, single.smooth_seconds,
              tol * (1.0 + std::fabs(single.smooth_seconds)))
      << what;
}

class BatchedEvalTest : public ::testing::Test {
 protected:
  BatchedEvalTest() : topology_(MakeEc2Topology(6, Heterogeneity::kHigh)) {
    PowerLawOptions opt;
    opt.num_vertices = 192;
    opt.num_edges = 1280;
    opt.seed = 11;
    graph_ = GeneratePowerLaw(opt);
    GeoLocatorOptions geo;
    geo.num_dcs = topology_.num_dcs();
    locations_ = AssignGeoLocations(graph_, geo);
    sizes_ = AssignInputSizes(graph_);
  }

  PartitionState MakeState(ComputeModel model, uint32_t theta) const {
    PartitionConfig config;
    config.model = model;
    config.theta = theta;
    PartitionState state(&graph_, &topology_, &locations_, &sizes_,
                         config);
    return state;
  }

  // Every vertex, every destination: the batched pass must match the
  // single-destination evaluator, and neither may mutate the state.
  void CheckAllMoves(PartitionState* state, const char* what) {
    const int num_dcs = topology_.num_dcs();
    EvalScratch scratch;
    EvalScratch batch_scratch;
    std::vector<Objective> batched(num_dcs);
    const Objective current = state->CurrentObjective();
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      state->EvaluateMoveAll(v, &batch_scratch, batched.data());
      for (DcId to = 0; to < num_dcs; ++to) {
        const Objective single = state->EvaluateMove(v, to, &scratch);
        ExpectNear(batched[to], single, what);
      }
      // The from==to entry is the current objective by contract.
      ExpectNear(batched[state->master(v)], current, what);
    }
    ExpectNear(state->CurrentObjective(), current, what);
  }

  Graph graph_;
  Topology topology_;
  std::vector<DcId> locations_;
  std::vector<double> sizes_;
};

TEST_F(BatchedEvalTest, HybridCutMatchesSingleEvaluator) {
  // theta chosen so the fixture has both high- and low-degree movers.
  PartitionState state =
      MakeState(ComputeModel::kHybridCut, PartitionState::AutoTheta(graph_));
  state.ResetDerived(locations_);
  bool saw_high = false;
  bool saw_low = false;
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    (state.is_high_degree(v) ? saw_high : saw_low) = true;
  }
  EXPECT_TRUE(saw_high);
  EXPECT_TRUE(saw_low);
  CheckAllMoves(&state, "hybrid natural");

  // Also from a scrambled placement (mirrors everywhere).
  Rng rng(5);
  for (int move = 0; move < 300; ++move) {
    const VertexId v =
        static_cast<VertexId>(rng.UniformInt(graph_.num_vertices()));
    state.MoveMaster(
        v, static_cast<DcId>(rng.UniformInt(topology_.num_dcs())));
  }
  CheckAllMoves(&state, "hybrid scrambled");
}

TEST_F(BatchedEvalTest, EdgeCutMatchesSingleEvaluator) {
  PartitionState state = MakeState(ComputeModel::kEdgeCut, 100);
  state.ResetDerived(locations_);
  CheckAllMoves(&state, "edge-cut");
}

TEST_F(BatchedEvalTest, SelfLoopsAndMultiEdgesMatch) {
  GraphBuilder b(6);
  b.AddEdge(0, 0);  // self-loop on the mover
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);  // parallel edge
  b.AddEdge(1, 2);
  b.AddEdge(3, 0);
  b.AddEdge(4, 5);
  b.AddEdge(5, 5);  // self-loop away from the mover
  Graph graph = std::move(b).Build();
  Topology topology = MakeEc2Topology(4, Heterogeneity::kMedium);
  std::vector<DcId> locations = {0, 1, 2, 3, 0, 1};
  std::vector<double> sizes(6, 1e6);
  for (uint32_t theta : {1u, 100u}) {
    PartitionConfig config;
    config.model = ComputeModel::kHybridCut;
    config.theta = theta;
    PartitionState state(&graph, &topology, &locations, &sizes, config);
    state.ResetDerived(locations);
    EvalScratch scratch;
    EvalScratch batch_scratch;
    std::vector<Objective> batched(topology.num_dcs());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      state.EvaluateMoveAll(v, &batch_scratch, batched.data());
      for (DcId to = 0; to < topology.num_dcs(); ++to) {
        ExpectNear(batched[to], state.EvaluateMove(v, to, &scratch),
                   "self-loop fixture");
      }
    }
  }
}

TEST_F(BatchedEvalTest, VertexCutPlaceEdgeAllMatchesSingleEvaluator) {
  PartitionState state = MakeState(ComputeModel::kVertexCut, 100);
  state.ResetUnplaced(locations_);
  Rng rng(7);
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    state.PlaceEdge(
        e, static_cast<DcId>(rng.UniformInt(topology_.num_dcs())));
  }
  const int num_dcs = topology_.num_dcs();
  EvalScratch scratch;
  EvalScratch batch_scratch;
  std::vector<Objective> batched(num_dcs);
  const Objective current = state.CurrentObjective();
  for (EdgeId e = 0; e < graph_.num_edges(); e += 3) {
    state.EvaluatePlaceEdgeAll(e, &batch_scratch, batched.data());
    for (DcId to = 0; to < num_dcs; ++to) {
      ExpectNear(batched[to], state.EvaluatePlaceEdge(e, to, &scratch),
                 "vertex-cut");
    }
    ExpectNear(batched[state.edge_dc(e)], current, "vertex-cut current");
  }
}

TEST_F(BatchedEvalTest, MatchesAfterTopologyUpdate) {
  PartitionState state =
      MakeState(ComputeModel::kHybridCut, PartitionState::AutoTheta(graph_));
  state.ResetDerived(locations_);
  Rng rng(9);
  for (int move = 0; move < 150; ++move) {
    const VertexId v =
        static_cast<VertexId>(rng.UniformInt(graph_.num_vertices()));
    state.MoveMaster(
        v, static_cast<DcId>(rng.UniformInt(topology_.num_dcs())));
  }
  Topology degraded = MakeEc2Topology(6, Heterogeneity::kLow);
  state.UpdateTopology(&degraded);
  CheckAllMoves(&state, "post-update");
}

TEST(BatchedEvalTrainerTest, TrainerBatchedPathPassesInvariantAudit) {
  // End-to-end: the trainer's scoring now goes through EvaluateMoveAll;
  // RLCUT_DEBUG_INVARIANTS=2 audits every other step against a cold
  // rebuild, so a batched-path bug that corrupted state would abort.
  PowerLawOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 2048;
  opt.seed = 21;
  Graph graph = GeneratePowerLaw(opt);
  Topology topology = MakeEc2Topology(5, Heterogeneity::kMedium);
  GeoLocatorOptions geo;
  geo.num_dcs = topology.num_dcs();
  std::vector<DcId> locations = AssignGeoLocations(graph, geo);
  std::vector<double> sizes = AssignInputSizes(graph);
  PartitionConfig config;
  config.theta = PartitionState::AutoTheta(graph);
  PartitionState state(&graph, &topology, &locations, &sizes, config);
  state.ResetDerived(locations);

  ASSERT_EQ(::setenv("RLCUT_DEBUG_INVARIANTS", "2", 1), 0);
  EXPECT_TRUE(check::DebugInvariantsEnabled());
  RLCutOptions options;
  options.max_steps = 4;
  options.batch_size = 24;
  options.num_threads = 2;
  options.seed = 19;
  RLCutTrainer trainer(options);
  const TrainResult result = trainer.Train(&state);
  ::unsetenv("RLCUT_DEBUG_INVARIANTS");
  EXPECT_FALSE(result.steps.empty());
  EXPECT_TRUE(state.CheckInvariants());
}

}  // namespace
}  // namespace rlcut
