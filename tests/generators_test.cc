#include <algorithm>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/generators.h"

namespace rlcut {
namespace {

TEST(RmatTest, ProducesRequestedSize) {
  RmatOptions opt;
  opt.num_vertices = 1000;  // rounded up to 1024
  opt.num_edges = 5000;
  Graph g = GenerateRmat(opt);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_EQ(g.num_edges(), 5000u);
}

TEST(RmatTest, DeterministicBySeed) {
  RmatOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 2000;
  opt.seed = 5;
  Graph a = GenerateRmat(opt);
  Graph b = GenerateRmat(opt);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.GetEdge(e), b.GetEdge(e));
  }
}

TEST(RmatTest, SeedChangesOutput) {
  RmatOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 2000;
  opt.seed = 5;
  Graph a = GenerateRmat(opt);
  opt.seed = 6;
  Graph b = GenerateRmat(opt);
  int diff = 0;
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    if (!(a.GetEdge(e) == b.GetEdge(e))) ++diff;
  }
  EXPECT_GT(diff, 100);
}

TEST(RmatTest, SkewedDegrees) {
  RmatOptions opt;
  opt.num_vertices = 4096;
  opt.num_edges = 1 << 16;
  Graph g = GenerateRmat(opt);
  const double avg_in =
      static_cast<double>(g.num_edges()) / g.num_vertices();
  // A hub should exist with in-degree far above the mean.
  EXPECT_GT(g.MaxInDegree(), 10 * avg_in);
}

TEST(PowerLawTest, SkewedInDegreesNearUniformOutDegrees) {
  PowerLawOptions opt;
  opt.num_vertices = 4096;
  opt.num_edges = 1 << 16;
  opt.exponent = 2.0;
  Graph g = GeneratePowerLaw(opt);
  EXPECT_EQ(g.num_edges(), opt.num_edges);
  const double avg = static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_GT(g.MaxInDegree(), 20 * avg);
  uint32_t max_out = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_out = std::max(max_out, g.OutDegree(v));
  }
  // Uniform out-degree: max ~ avg + O(sqrt), certainly below 5x mean of
  // a same-|E| Zipf in-degree hub.
  EXPECT_LT(max_out, g.MaxInDegree() / 2);
}

TEST(PowerLawTest, HigherExponentLessSkew) {
  PowerLawOptions opt;
  opt.num_vertices = 4096;
  opt.num_edges = 1 << 16;
  opt.exponent = 1.6;
  const uint32_t heavy = GeneratePowerLaw(opt).MaxInDegree();
  opt.exponent = 3.0;
  const uint32_t light = GeneratePowerLaw(opt).MaxInDegree();
  EXPECT_GT(heavy, light);
}

TEST(ErdosRenyiTest, NoSkew) {
  Graph g = GenerateErdosRenyi(4096, 1 << 16, 3);
  const double avg = static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_LT(g.MaxInDegree(), 5 * avg);
}

TEST(GeneratorEdgeVariants, MatchGraphVariants) {
  RmatOptions opt;
  opt.num_vertices = 128;
  opt.num_edges = 512;
  const std::vector<Edge> edges = GenerateRmatEdges(opt);
  EXPECT_EQ(edges.size(), 512u);
  for (const Edge& e : edges) {
    EXPECT_LT(e.src, 128u);
    EXPECT_LT(e.dst, 128u);
  }
}

// ---- Dataset presets ------------------------------------------------------

TEST(DatasetTest, AllFivePresets) {
  EXPECT_EQ(AllDatasets().size(), 5u);
}

TEST(DatasetTest, NamesMatchPaperNotation) {
  EXPECT_EQ(DatasetName(Dataset::kLiveJournal), "LJ");
  EXPECT_EQ(DatasetName(Dataset::kOrkut), "OT");
  EXPECT_EQ(DatasetName(Dataset::kUk2005), "UK");
  EXPECT_EQ(DatasetName(Dataset::kIt2004), "IT");
  EXPECT_EQ(DatasetName(Dataset::kTwitter), "TW");
}

TEST(DatasetTest, ParseAcceptsShortAndLongNames) {
  EXPECT_EQ(ParseDataset("tw").value(), Dataset::kTwitter);
  EXPECT_EQ(ParseDataset("Twitter").value(), Dataset::kTwitter);
  EXPECT_EQ(ParseDataset("uk-2005").value(), Dataset::kUk2005);
  EXPECT_FALSE(ParseDataset("facebook").ok());
}

TEST(DatasetTest, ShapesMatchTableII) {
  const DatasetShape lj = GetDatasetShape(Dataset::kLiveJournal);
  EXPECT_EQ(lj.num_vertices, 4847571u);
  EXPECT_EQ(lj.num_edges, 68993773u);
  const DatasetShape tw = GetDatasetShape(Dataset::kTwitter);
  EXPECT_EQ(tw.num_edges, 1468365182u);
}

TEST(DatasetTest, ScaledSizePreservesRatio) {
  const uint64_t scale = 2000;
  Graph g = LoadDataset(Dataset::kOrkut, scale);
  const DatasetShape shape = GetDatasetShape(Dataset::kOrkut);
  EXPECT_EQ(g.num_edges(), shape.num_edges / scale);
  // Vertex count within 2x of target (R-MAT rounds to powers of two).
  const double target = static_cast<double>(shape.num_vertices) / scale;
  EXPECT_GE(g.num_vertices(), target / 2);
  EXPECT_LE(g.num_vertices(), target * 2.5);
}

TEST(DatasetTest, TwitterPresetMostSkewed) {
  Graph tw = LoadDataset(Dataset::kTwitter, 4000);
  const double avg =
      static_cast<double>(tw.num_edges()) / tw.num_vertices();
  EXPECT_GT(tw.MaxInDegree(), 20 * avg);
}

}  // namespace
}  // namespace rlcut
