// Tests for the observability subsystem (src/obs) and the unified
// partitioner API it plugs into: metrics registry thread-safety,
// histogram percentiles, trace span nesting, exporter golden strings,
// the string-keyed partitioner registry, and the fallible
// Partitioner::Run contract.

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/extra_partitioners.h"
#include "baselines/partitioner.h"
#include "cloud/topology.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rlcut/trainer.h"

namespace rlcut {
namespace {

using obs::Counter;
using obs::Histogram;
using obs::MetricKind;
using obs::MetricSample;
using obs::MetricsRegistry;
using obs::TraceEvent;
using obs::TraceRecorder;
using obs::TraceSpan;

// ---- MetricsRegistry ----------------------------------------------------

TEST(MetricsRegistryTest, CounterConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Each thread does its own lookup: exercises concurrent GetCounter
      // against concurrent increments.
      Counter* counter = registry.GetCounter("test.hits");
      for (int i = 0; i < kIncrements; ++i) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("test.hits")->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, HistogramConcurrentObservationsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kObservations = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      Histogram* h = registry.GetHistogram("test.latency");
      for (int i = 0; i < kObservations; ++i) {
        h->Observe(1.0 + t);  // values 1..4, one per thread
      }
    });
  }
  for (auto& t : threads) t.join();
  Histogram* h = registry.GetHistogram("test.latency");
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kObservations);
  EXPECT_DOUBLE_EQ(h->min(), 1.0);
  EXPECT_DOUBLE_EQ(h->max(), 4.0);
  EXPECT_DOUBLE_EQ(h->sum(), kObservations * (1.0 + 2.0 + 3.0 + 4.0));
}

TEST(MetricsRegistryTest, LabeledSeriesAreDistinct) {
  MetricsRegistry registry;
  registry.GetCounter("steps", {{"step", "0"}})->Increment(3);
  registry.GetCounter("steps", {{"step", "1"}})->Increment(5);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.GetCounter("steps", {{"step", "0"}})->value(), 3u);
  EXPECT_EQ(registry.GetCounter("steps", {{"step", "1"}})->value(), 5u);

  const std::vector<MetricSample> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].LabelValue("step"), "0");
  EXPECT_EQ(snapshot[1].LabelValue("step"), "1");
  EXPECT_EQ(snapshot[0].LabelValue("absent"), "");
}

TEST(MetricsRegistryTest, PointersStableAcrossLookups) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("stable");
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler." + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("stable"), first);
}

// ---- Histogram ----------------------------------------------------------

TEST(HistogramTest, BasicStatistics) {
  Histogram h;
  h.Observe(1.0);
  h.Observe(2.0);
  h.Observe(4.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 7.0);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, PercentilesOfUniformValues) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.Observe(static_cast<double>(v));
  // Buckets are octaves, so percentiles are exact to within one power
  // of two and clamped to the observed range.
  EXPECT_NEAR(h.Percentile(0.5), 500.0, 64.0);
  EXPECT_GE(h.Percentile(0.9), 800.0);
  EXPECT_LE(h.Percentile(0.99), 1000.0);
  EXPECT_GE(h.Percentile(0.99), h.Percentile(0.9));
  EXPECT_GE(h.Percentile(0.9), h.Percentile(0.5));
  EXPECT_NEAR(h.Percentile(0.0), 1.0, 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 1000.0);
}

TEST(HistogramTest, SingleValuePercentilesCollapse) {
  Histogram h;
  h.Observe(3.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 3.5);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 3.5);
}

TEST(HistogramTest, BucketIndexCoversRange) {
  EXPECT_EQ(Histogram::BucketIndex(1.0), -Histogram::kMinExp);
  EXPECT_EQ(Histogram::BucketIndex(2.0), -Histogram::kMinExp + 1);
  // Non-positive and non-finite inputs land in the underflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0);
  // Huge values clamp to the last bucket.
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);
  EXPECT_DOUBLE_EQ(Histogram::BucketLowerBound(-Histogram::kMinExp), 1.0);
}

// ---- CSV exporter golden ------------------------------------------------

TEST(MetricsRegistryTest, CsvExportGolden) {
  MetricsRegistry registry;
  registry.GetCounter("alpha")->Increment(2);
  registry.GetGauge("beta", {{"dc", "us-east"}})->Set(1.5);
  registry.GetHistogram("gamma")->Observe(2.0);
  std::ostringstream os;
  registry.WriteCsv(os);
  EXPECT_EQ(os.str(),
            "name,labels,kind,value,count,sum,min,max,p50,p90,p99\n"
            "alpha,,counter,2,0,0,0,0,0,0,0\n"
            "beta,dc=us-east,gauge,1.5,0,0,0,0,0,0,0\n"
            "gamma,,histogram,2,1,2,2,2,2,2,2\n");
}

// ---- Trace spans --------------------------------------------------------

TEST(TraceTest, DisabledTracingRecordsNothing) {
  ASSERT_EQ(obs::GetTraceRecorder(), nullptr);
  {
    TraceSpan span("noop", "test");
    span.AddArg("x", 1.0);
  }
  EXPECT_FALSE(obs::TracingEnabled());
}

TEST(TraceTest, NestedSpansRecordContainedIntervals) {
  TraceRecorder recorder;
  obs::SetTraceRecorder(&recorder);
  {
    TraceSpan outer("outer", "test");
    outer.AddArg("depth", 0);
    {
      TraceSpan inner("inner", "test");
      inner.AddArg("depth", 1);
    }
  }
  obs::SetTraceRecorder(nullptr);

  const std::vector<TraceEvent> events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order: the inner span ends (and records) first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.tid, outer.tid);
  // The child's interval nests inside the parent's.
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.start_us + inner.duration_us,
            outer.start_us + outer.duration_us + 1e-6);
  ASSERT_EQ(inner.args.size(), 1u);
  EXPECT_EQ(inner.args[0].first, "depth");
  EXPECT_DOUBLE_EQ(inner.args[0].second, 1.0);
}

TEST(TraceTest, ThreadsGetDistinctTids) {
  const uint32_t main_tid = obs::CurrentTraceTid();
  EXPECT_GE(main_tid, 1u);
  EXPECT_EQ(obs::CurrentTraceTid(), main_tid);  // stable per thread
  uint32_t other_tid = 0;
  std::thread([&other_tid] { other_tid = obs::CurrentTraceTid(); }).join();
  EXPECT_NE(other_tid, main_tid);
}

TEST(TraceTest, ChromeTraceExportGolden) {
  TraceRecorder recorder;
  TraceEvent alpha;
  alpha.name = "alpha";
  alpha.category = "test";
  alpha.start_us = 1.0;
  alpha.duration_us = 2.5;
  alpha.tid = 1;
  alpha.args = {{"x", 3.0}};
  recorder.Record(alpha);
  TraceEvent beta;
  beta.name = "be\"ta";  // exercises JSON escaping
  beta.category = "test";
  beta.start_us = 4.0;
  beta.duration_us = 0.5;
  beta.tid = 2;
  recorder.Record(beta);

  std::ostringstream os;
  recorder.WriteChromeTrace(os);
  EXPECT_EQ(os.str(),
            "{\"traceEvents\":[\n"
            "{\"name\":\"alpha\",\"cat\":\"test\",\"ph\":\"X\","
            "\"ts\":1.000,\"dur\":2.500,\"pid\":1,\"tid\":1,"
            "\"args\":{\"x\":3}},\n"
            "{\"name\":\"be\\\"ta\",\"cat\":\"test\",\"ph\":\"X\","
            "\"ts\":4.000,\"dur\":0.500,\"pid\":1,\"tid\":2}\n"
            "],\"displayTimeUnit\":\"ms\"}\n");

  std::ostringstream csv;
  recorder.WriteCsv(csv);
  EXPECT_EQ(csv.str(),
            "name,category,tid,start_us,duration_us,args\n"
            "alpha,test,1,1.000,2.500,x=3\n"
            "be\"ta,test,2,4.000,0.500,\n");
}

// ---- StepStats as a registry view --------------------------------------

TEST(StepStatsTest, MaterializesFromRegistrySorted) {
  MetricsRegistry registry;
  // Write step 1 before step 0: the view must come back sorted by step.
  registry.GetGauge("trainer.step.seconds", {{"step", "1"}})->Set(0.25);
  registry.GetCounter("trainer.step.migrations", {{"step", "1"}})
      ->Increment(7);
  registry.GetGauge("trainer.step.sample_rate", {{"step", "0"}})->Set(0.5);
  registry.GetGauge("trainer.step.num_agents", {{"step", "0"}})->Set(42);
  registry.GetCounter("trainer.step.rollbacks", {{"step", "0"}})
      ->Increment(2);

  const std::vector<StepStats> steps = StepStatsFromRegistry(registry);
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].step, 0);
  EXPECT_DOUBLE_EQ(steps[0].sample_rate, 0.5);
  EXPECT_EQ(steps[0].num_agents, 42u);
  EXPECT_EQ(steps[0].rollbacks, 2u);
  EXPECT_EQ(steps[1].step, 1);
  EXPECT_DOUBLE_EQ(steps[1].seconds, 0.25);
  EXPECT_EQ(steps[1].migrations, 7u);
}

// ---- Partitioner registry ----------------------------------------------

TEST(PartitionerRegistryTest, PaperComparisonsInFig10Order) {
  std::vector<std::string> paper;
  for (const PartitionerInfo& info : ListPartitioners()) {
    if (info.paper_comparison) paper.push_back(info.name);
  }
  EXPECT_EQ(paper, (std::vector<std::string>{"RandPG", "Geo-Cut", "HashPL",
                                             "Ginger", "Revolver",
                                             "Spinner"}));
}

TEST(PartitionerRegistryTest, EveryEntryConstructsWithMatchingName) {
  for (const PartitionerInfo& info : ListPartitioners()) {
    SCOPED_TRACE(info.name);
    Result<std::unique_ptr<Partitioner>> p =
        MakePartitionerByName(info.name, {});
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    EXPECT_EQ((*p)->name(), info.name);
    EXPECT_FALSE(info.summary.empty());
  }
}

TEST(PartitionerRegistryTest, RlcutIsRegisteredAndBudgetAware) {
  bool found = false;
  for (const PartitionerInfo& info : ListPartitioners()) {
    if (info.name != "RLCut") continue;
    found = true;
    EXPECT_TRUE(info.budget_aware);
    EXPECT_FALSE(info.paper_comparison);  // ours, not a comparison
  }
  EXPECT_TRUE(found);
}

TEST(PartitionerRegistryTest, UnknownNameIsNotFound) {
  Result<std::unique_ptr<Partitioner>> p =
      MakePartitionerByName("NoSuchMethod", {});
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kNotFound);
  EXPECT_NE(p.status().message().find("unknown partitioner"),
            std::string::npos);
  // The error lists the valid names to pick from.
  EXPECT_NE(p.status().message().find("RLCut"), std::string::npos);
}

TEST(PartitionerRegistryTest, LegacyLookupReturnsNullOnUnknown) {
  EXPECT_EQ(MakePartitionerByName("NoSuchMethod"), nullptr);
  EXPECT_NE(MakePartitionerByName("Spinner"), nullptr);
}

// ---- Fallible Partitioner::Run -----------------------------------------

class FallibleRunTest : public ::testing::Test {
 protected:
  FallibleRunTest() : topology_(MakeEc2Topology(4, Heterogeneity::kLow)) {
    PowerLawOptions opt;
    opt.num_vertices = 256;
    opt.num_edges = 1024;
    graph_ = GeneratePowerLaw(opt);
    GeoLocatorOptions geo;
    geo.num_dcs = 4;
    locations_ = AssignGeoLocations(graph_, geo);
    sizes_ = AssignInputSizes(graph_);

    ctx_.graph = &graph_;
    ctx_.topology = &topology_;
    ctx_.locations = &locations_;
    ctx_.input_sizes = &sizes_;
    ctx_.workload = Workload::PageRank();
    ctx_.theta = PartitionState::AutoTheta(graph_);
    ctx_.budget = 100.0;
    ctx_.seed = 7;
  }

  Graph graph_;
  Topology topology_;
  std::vector<DcId> locations_;
  std::vector<double> sizes_;
  PartitionerContext ctx_;
};

TEST_F(FallibleRunTest, ValidContextSucceeds) {
  auto partitioner = MakePartitionerByName("RandPG", {}).value();
  Result<PartitionOutput> out = partitioner->Run(ctx_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->state.CheckInvariants());
}

TEST_F(FallibleRunTest, NullGraphIsInvalidArgument) {
  ctx_.graph = nullptr;
  auto partitioner = MakePartitionerByName("RandPG", {}).value();
  Result<PartitionOutput> out = partitioner->Run(ctx_);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FallibleRunTest, NegativeBudgetIsInvalidArgument) {
  ctx_.budget = -1.0;
  auto partitioner = MakePartitionerByName("RandPG", {}).value();
  Result<PartitionOutput> out = partitioner->Run(ctx_);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FallibleRunTest, LocationSizeMismatchIsInvalidArgument) {
  std::vector<DcId> short_locations(graph_.num_vertices() - 1, 0);
  ctx_.locations = &short_locations;
  auto partitioner = MakePartitionerByName("RandPG", {}).value();
  Result<PartitionOutput> out = partitioner->Run(ctx_);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FallibleRunTest, LocationOutOfDcRangeIsInvalidArgument) {
  std::vector<DcId> bad_locations = locations_;
  bad_locations[0] = static_cast<DcId>(topology_.num_dcs());
  ctx_.locations = &bad_locations;
  auto partitioner = MakePartitionerByName("Spinner", {}).value();
  Result<PartitionOutput> out = partitioner->Run(ctx_);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FallibleRunTest, RunRecordsPartitionerMetrics) {
  auto partitioner = MakePartitionerByName("HashPL", {}).value();
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  obs::Counter* runs =
      registry.GetCounter("partitioner.runs", {{"method", "HashPL"}});
  const uint64_t before = runs->value();
  ASSERT_TRUE(partitioner->Run(ctx_).ok());
  EXPECT_EQ(runs->value(), before + 1);
}

}  // namespace
}  // namespace rlcut
