#include <cmath>

#include <gtest/gtest.h>

#include "cloud/flow_simulator.h"
#include "cloud/topology.h"
#include "cloud/topology_schedule.h"
#include "common/random.h"
#include "engine/gas_engine.h"
#include "engine/vertex_program.h"
#include "graph/generators.h"

namespace rlcut {
namespace {

TEST(FlowSimulatorTest, SingleFlowLimitedBySlowerLink) {
  // Uplink 0.5 GB/s, downlink 2.5 GB/s: 1 GB takes 2 s (uplink-bound).
  Topology topo = MakeUniformTopology(2, 0.5, 2.5, 0.1);
  FlowSimulator sim(&topo);
  EXPECT_NEAR(sim.SimulateMakespan({{0, 1, 1e9}}), 2.0, 1e-9);
}

TEST(FlowSimulatorTest, DownlinkBoundFlow) {
  Topology topo({{"fast-up", 10.0, 1.0, 0.1}, {"sink", 10.0, 1.0, 0.1}});
  FlowSimulator sim(&topo);
  // 1 GB into a 1 GB/s downlink: 1 s.
  EXPECT_NEAR(sim.SimulateMakespan({{0, 1, 1e9}}), 1.0, 1e-9);
}

TEST(FlowSimulatorTest, TwoFlowsSharingUplinkMatchClosedForm) {
  Topology topo = MakeUniformTopology(3, 0.5, 5.0, 0.1);
  FlowSimulator sim(&topo);
  // Both flows leave DC0; the uplink carries 2 GB total -> 4 s, and
  // max-min fairness keeps the uplink saturated throughout.
  std::vector<FlowTransfer> flows = {{0, 1, 1e9}, {0, 2, 1e9}};
  EXPECT_NEAR(sim.SimulateMakespan(flows), 4.0, 1e-9);
  EXPECT_NEAR(sim.ClosedFormBound(flows), 4.0, 1e-9);
}

TEST(FlowSimulatorTest, UnevenFlowsStillWorkConserving) {
  Topology topo = MakeUniformTopology(3, 1.0, 100.0, 0.1);
  FlowSimulator sim(&topo);
  // 1 GB + 3 GB share DC0's 1 GB/s uplink: total 4 GB -> 4 s makespan
  // (after the small flow finishes, the big one gets the full link).
  std::vector<FlowTransfer> flows = {{0, 1, 1e9}, {0, 2, 3e9}};
  EXPECT_NEAR(sim.SimulateMakespan(flows), 4.0, 1e-9);
}

TEST(FlowSimulatorTest, IndependentFlowsRunInParallel) {
  Topology topo = MakeUniformTopology(4, 1.0, 100.0, 0.1);
  FlowSimulator sim(&topo);
  // Disjoint (src,dst) pairs: both finish in 1 s, not 2.
  std::vector<FlowTransfer> flows = {{0, 1, 1e9}, {2, 3, 1e9}};
  EXPECT_NEAR(sim.SimulateMakespan(flows), 1.0, 1e-9);
}

TEST(FlowSimulatorTest, IntraDcAndEmptyFlowsIgnored) {
  Topology topo = MakeUniformTopology(2, 1.0, 1.0, 0.1);
  FlowSimulator sim(&topo);
  EXPECT_DOUBLE_EQ(sim.SimulateMakespan({{0, 0, 1e9}, {1, 1, 5e9}}), 0.0);
  EXPECT_DOUBLE_EQ(sim.SimulateMakespan({{0, 1, 0.0}}), 0.0);
  EXPECT_DOUBLE_EQ(sim.SimulateMakespan({}), 0.0);
}

TEST(FlowSimulatorTest, ZeroBandwidthLinkYieldsFiniteSaturatedTimes) {
  // Regression: a hard-down DC (uplink/downlink 0, e.g. a degraded
  // topology built outside the schedule presets) used to divide by zero
  // — ClosedFormBound returned inf and SimulateMakespan aborted on its
  // no-progress check. Dead links now price as saturated at the
  // kMinLinkBytesPerSec floor: finite but ruinous.
  Topology topo({{"dead", 0.0, 0.0, 0.1}, {"ok", 1.0, 1.0, 0.1}});
  FlowSimulator sim(&topo);
  const std::vector<FlowTransfer> flows = {{0, 1, 1e9}};
  const double bound = sim.ClosedFormBound(flows);
  const double makespan = sim.SimulateMakespan(flows);
  ASSERT_TRUE(std::isfinite(bound));
  ASSERT_TRUE(std::isfinite(makespan));
  // 1 GB over a floor-capacity (1 byte/s) uplink: ~1e9 seconds.
  EXPECT_NEAR(bound, 1e9, 1e7);
  EXPECT_GE(makespan, bound * (1 - 1e-9));
}

TEST(FlowSimulatorTest, BrownoutScheduleKeepsMakespanFiniteAndOrdered) {
  // Flow timing across a scheduled brownout window: degraded but
  // finite inside the window, back to baseline after recovery.
  Topology base = MakeUniformTopology(3, 1.0, 4.0, 0.1);
  const TopologySchedule schedule =
      MakeBrownoutSchedule(base, /*dc=*/0, /*start_step=*/10,
                           /*end_step=*/20, /*bandwidth_factor=*/0.01);
  const std::vector<FlowTransfer> flows = {{0, 1, 1e9}, {0, 2, 1e9}};

  const Topology before = schedule.EffectiveAt(5);
  const Topology during = schedule.EffectiveAt(15);
  const Topology after = schedule.EffectiveAt(25);
  FlowSimulator sim_before(&before);
  FlowSimulator sim_during(&during);
  FlowSimulator sim_after(&after);
  const double t_before = sim_before.SimulateMakespan(flows);
  const double t_during = sim_during.SimulateMakespan(flows);
  const double t_after = sim_after.SimulateMakespan(flows);
  ASSERT_TRUE(std::isfinite(t_during));
  EXPECT_NEAR(t_during, t_before * 100, t_before);
  EXPECT_DOUBLE_EQ(t_before, t_after);
}

TEST(FlowSimulatorTest, ObjectiveStaysFiniteWhenRepricedOntoDeadLinks) {
  // Regression for the Eq. 1-3 path: UpdateTopology onto a topology
  // with zero-bandwidth links used to produce an inf/NaN objective that
  // poisoned every downstream Eq. 10 score.
  PowerLawOptions opt;
  opt.num_vertices = 128;
  opt.num_edges = 512;
  Graph graph = GeneratePowerLaw(opt);
  Topology healthy = MakeUniformTopology(3, 1.0, 4.0, 0.1);
  std::vector<DcId> locations(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    locations[v] = static_cast<DcId>(HashU64(v) % 3);
  }
  std::vector<double> sizes(graph.num_vertices(), 1e6);
  PartitionConfig config;
  config.theta = PartitionState::AutoTheta(graph);
  PartitionState state(&graph, &healthy, &locations, &sizes, config);
  state.ResetDerived(locations);
  const Objective before = state.CurrentObjective();

  Topology dead({{"dead", 0.0, 0.0, 0.1},
                 {"ok-1", 1.0, 4.0, 0.1},
                 {"ok-2", 1.0, 4.0, 0.1}});
  state.UpdateTopology(&dead);
  const Objective during = state.CurrentObjective();
  ASSERT_TRUE(std::isfinite(during.transfer_seconds));
  ASSERT_TRUE(std::isfinite(during.smooth_seconds));
  ASSERT_TRUE(std::isfinite(during.cost_dollars));
  // Saturated pricing must make the dead link ruinous, not free.
  EXPECT_GT(during.transfer_seconds, before.transfer_seconds * 100);

  // Eq. 10 scoring input: what-if evaluation stays finite too.
  EvalScratch scratch;
  const Objective what_if = state.EvaluateMove(0, 1, &scratch);
  EXPECT_TRUE(std::isfinite(what_if.transfer_seconds));

  state.UpdateTopology(&healthy);
  const Objective restored = state.CurrentObjective();
  EXPECT_DOUBLE_EQ(restored.transfer_seconds, before.transfer_seconds);
  // CheckInvariants cold-rebuilds through the PartitionState ctor,
  // which requires a Validate()-clean topology — hence after restore.
  EXPECT_TRUE(state.CheckInvariants());
}

TEST(FlowSimulatorTest, MaxMinFairnessAchievesClosedFormOnRandomSets) {
  // In the two-layer hose model, progressive-filling max-min fairness
  // achieves the Eq. 2/3 closed form exactly on every random flow set
  // we have generated (here and in 20000-trial offline sweeps); the
  // structured flow matrices of real GAS stages can open gaps, but they
  // stay below 0.1% (next test). Makespan may never go *below* the
  // bound.
  Topology topo = MakeEc2Topology();
  FlowSimulator sim(&topo);
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<FlowTransfer> flows;
    const int count = 1 + static_cast<int>(rng.UniformInt(30));
    for (int i = 0; i < count; ++i) {
      flows.push_back({static_cast<DcId>(rng.UniformInt(8)),
                       static_cast<DcId>(rng.UniformInt(8)),
                       rng.UniformDouble() * 1e9});
    }
    const double bound = sim.ClosedFormBound(flows);
    const double makespan = sim.SimulateMakespan(flows);
    EXPECT_GE(makespan, bound * (1 - 1e-9));
    EXPECT_LE(makespan, bound * (1 + 1e-9));
  }
}

TEST(FlowSimulatorTest, EngineFlowLevelTimingCloseToClosedForm) {
  // End-to-end: per-super-step flow-level timing stays within a
  // fraction of a percent of the Eq. 1 closed form on a real workload.
  PowerLawOptions opt;
  opt.num_vertices = 512;
  opt.num_edges = 4096;
  Graph graph = GeneratePowerLaw(opt);
  Topology topo = MakeEc2Topology();
  std::vector<DcId> locations(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    locations[v] = static_cast<DcId>(HashU64(v) % 8);
  }
  std::vector<double> sizes(graph.num_vertices(), 1e6);
  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = PartitionState::AutoTheta(graph);
  PartitionState state(&graph, &topo, &locations, &sizes, config);
  state.ResetDerived(locations);

  auto p1 = MakePageRank(5);
  auto p2 = MakePageRank(5);
  GasEngine closed(&state, {TimingModel::kClosedForm});
  GasEngine flow(&state, {TimingModel::kFlowLevel});
  const double t_closed = closed.Run(p1.get()).total_transfer_seconds;
  const double t_flow = flow.Run(p2.get()).total_transfer_seconds;
  EXPECT_GE(t_flow, t_closed * (1 - 1e-9));
  // Structured GAS flow matrices open only sub-0.1% gaps over the
  // closed form (fair sharing briefly under-utilizes the bottleneck
  // after correlated small flows drain).
  EXPECT_LE(t_flow, t_closed * 1.005);
}

}  // namespace
}  // namespace rlcut
