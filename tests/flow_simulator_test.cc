#include <gtest/gtest.h>

#include "cloud/flow_simulator.h"
#include "cloud/topology.h"
#include "common/random.h"
#include "engine/gas_engine.h"
#include "engine/vertex_program.h"
#include "graph/generators.h"

namespace rlcut {
namespace {

TEST(FlowSimulatorTest, SingleFlowLimitedBySlowerLink) {
  // Uplink 0.5 GB/s, downlink 2.5 GB/s: 1 GB takes 2 s (uplink-bound).
  Topology topo = MakeUniformTopology(2, 0.5, 2.5, 0.1);
  FlowSimulator sim(&topo);
  EXPECT_NEAR(sim.SimulateMakespan({{0, 1, 1e9}}), 2.0, 1e-9);
}

TEST(FlowSimulatorTest, DownlinkBoundFlow) {
  Topology topo({{"fast-up", 10.0, 1.0, 0.1}, {"sink", 10.0, 1.0, 0.1}});
  FlowSimulator sim(&topo);
  // 1 GB into a 1 GB/s downlink: 1 s.
  EXPECT_NEAR(sim.SimulateMakespan({{0, 1, 1e9}}), 1.0, 1e-9);
}

TEST(FlowSimulatorTest, TwoFlowsSharingUplinkMatchClosedForm) {
  Topology topo = MakeUniformTopology(3, 0.5, 5.0, 0.1);
  FlowSimulator sim(&topo);
  // Both flows leave DC0; the uplink carries 2 GB total -> 4 s, and
  // max-min fairness keeps the uplink saturated throughout.
  std::vector<FlowTransfer> flows = {{0, 1, 1e9}, {0, 2, 1e9}};
  EXPECT_NEAR(sim.SimulateMakespan(flows), 4.0, 1e-9);
  EXPECT_NEAR(sim.ClosedFormBound(flows), 4.0, 1e-9);
}

TEST(FlowSimulatorTest, UnevenFlowsStillWorkConserving) {
  Topology topo = MakeUniformTopology(3, 1.0, 100.0, 0.1);
  FlowSimulator sim(&topo);
  // 1 GB + 3 GB share DC0's 1 GB/s uplink: total 4 GB -> 4 s makespan
  // (after the small flow finishes, the big one gets the full link).
  std::vector<FlowTransfer> flows = {{0, 1, 1e9}, {0, 2, 3e9}};
  EXPECT_NEAR(sim.SimulateMakespan(flows), 4.0, 1e-9);
}

TEST(FlowSimulatorTest, IndependentFlowsRunInParallel) {
  Topology topo = MakeUniformTopology(4, 1.0, 100.0, 0.1);
  FlowSimulator sim(&topo);
  // Disjoint (src,dst) pairs: both finish in 1 s, not 2.
  std::vector<FlowTransfer> flows = {{0, 1, 1e9}, {2, 3, 1e9}};
  EXPECT_NEAR(sim.SimulateMakespan(flows), 1.0, 1e-9);
}

TEST(FlowSimulatorTest, IntraDcAndEmptyFlowsIgnored) {
  Topology topo = MakeUniformTopology(2, 1.0, 1.0, 0.1);
  FlowSimulator sim(&topo);
  EXPECT_DOUBLE_EQ(sim.SimulateMakespan({{0, 0, 1e9}, {1, 1, 5e9}}), 0.0);
  EXPECT_DOUBLE_EQ(sim.SimulateMakespan({{0, 1, 0.0}}), 0.0);
  EXPECT_DOUBLE_EQ(sim.SimulateMakespan({}), 0.0);
}

TEST(FlowSimulatorTest, MaxMinFairnessAchievesClosedFormOnRandomSets) {
  // In the two-layer hose model, progressive-filling max-min fairness
  // achieves the Eq. 2/3 closed form exactly on every random flow set
  // we have generated (here and in 20000-trial offline sweeps); the
  // structured flow matrices of real GAS stages can open gaps, but they
  // stay below 0.1% (next test). Makespan may never go *below* the
  // bound.
  Topology topo = MakeEc2Topology();
  FlowSimulator sim(&topo);
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<FlowTransfer> flows;
    const int count = 1 + static_cast<int>(rng.UniformInt(30));
    for (int i = 0; i < count; ++i) {
      flows.push_back({static_cast<DcId>(rng.UniformInt(8)),
                       static_cast<DcId>(rng.UniformInt(8)),
                       rng.UniformDouble() * 1e9});
    }
    const double bound = sim.ClosedFormBound(flows);
    const double makespan = sim.SimulateMakespan(flows);
    EXPECT_GE(makespan, bound * (1 - 1e-9));
    EXPECT_LE(makespan, bound * (1 + 1e-9));
  }
}

TEST(FlowSimulatorTest, EngineFlowLevelTimingCloseToClosedForm) {
  // End-to-end: per-super-step flow-level timing stays within a
  // fraction of a percent of the Eq. 1 closed form on a real workload.
  PowerLawOptions opt;
  opt.num_vertices = 512;
  opt.num_edges = 4096;
  Graph graph = GeneratePowerLaw(opt);
  Topology topo = MakeEc2Topology();
  std::vector<DcId> locations(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    locations[v] = static_cast<DcId>(HashU64(v) % 8);
  }
  std::vector<double> sizes(graph.num_vertices(), 1e6);
  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = PartitionState::AutoTheta(graph);
  PartitionState state(&graph, &topo, &locations, &sizes, config);
  state.ResetDerived(locations);

  auto p1 = MakePageRank(5);
  auto p2 = MakePageRank(5);
  GasEngine closed(&state, {TimingModel::kClosedForm});
  GasEngine flow(&state, {TimingModel::kFlowLevel});
  const double t_closed = closed.Run(p1.get()).total_transfer_seconds;
  const double t_flow = flow.Run(p2.get()).total_transfer_seconds;
  EXPECT_GE(t_flow, t_closed * (1 - 1e-9));
  // Structured GAS flow matrices open only sub-0.1% gaps over the
  // closed form (fair sharing briefly under-utilizes the bottleneck
  // after correlated small flows drain).
  EXPECT_LE(t_flow, t_closed * 1.005);
}

}  // namespace
}  // namespace rlcut
