// Edge-case and robustness tests across modules: degenerate graphs,
// boundary DC counts, degenerate workloads, logging levels.

#include <gtest/gtest.h>

#include "cloud/topology.h"
#include "common/logging.h"
#include "common/random.h"
#include "engine/gas_engine.h"
#include "engine/vertex_program.h"
#include "graph/generators.h"
#include "partition/partition_state.h"
#include "graph/io.h"
#include "rlcut/trainer.h"

namespace rlcut {
namespace {

// ---- Degenerate graphs ------------------------------------------------------

TEST(RobustnessTest, EdgelessGraphPartitionState) {
  GraphBuilder b(16);
  Graph g = std::move(b).Build();
  Topology topo = MakeUniformTopology(4);
  std::vector<DcId> locations(16, 1);
  std::vector<double> sizes(16, 1e6);
  PartitionConfig config;
  PartitionState state(&g, &topo, &locations, &sizes, config);
  state.ResetDerived(locations);
  EXPECT_DOUBLE_EQ(state.TransferSecondsPerIteration(), 0.0);
  EXPECT_DOUBLE_EQ(state.ReplicationFactor(), 1.0);
  state.MoveMaster(0, 3);
  EXPECT_GT(state.MoveCost(), 0.0);  // data moved, no traffic
  EXPECT_DOUBLE_EQ(state.TransferSecondsPerIteration(), 0.0);
  EXPECT_TRUE(state.CheckInvariants());
}

TEST(RobustnessTest, SingleVertexGraphEngine) {
  GraphBuilder b(1);
  Graph g = std::move(b).Build();
  Topology topo = MakeUniformTopology(2);
  std::vector<DcId> locations(1, 0);
  std::vector<double> sizes(1, 1e6);
  PartitionConfig config;
  PartitionState state(&g, &topo, &locations, &sizes, config);
  state.ResetDerived(locations);
  auto program = MakePageRank(3);
  GasEngine engine(&state);
  const RunResult result = engine.Run(program.get());
  ASSERT_EQ(result.values.size(), 1u);
  // Dangling-mass-dropping PageRank: no in-edges, so the rank settles
  // at the teleport term (1-d)/N = 0.15.
  EXPECT_NEAR(result.values[0], 0.15, 1e-9);
  EXPECT_DOUBLE_EQ(result.total_wan_bytes, 0.0);
}

TEST(RobustnessTest, TrainerOnSingleDcIsNoOp) {
  Graph g = GenerateRing(32, 1);
  Topology topo = MakeUniformTopology(1);
  std::vector<DcId> locations(32, 0);
  std::vector<double> sizes(32, 1e6);
  PartitionConfig config;
  PartitionState state(&g, &topo, &locations, &sizes, config);
  state.ResetDerived(locations);
  RLCutOptions opt;
  opt.max_steps = 3;
  RLCutTrainer trainer(opt);
  const TrainResult result = trainer.Train(&state);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.steps.empty());
}

TEST(RobustnessTest, StarGraphHubMoves) {
  // Star: hub 0 receives from all leaves; the hub is high-degree.
  const VertexId n = 64;
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) b.AddEdge(v, 0);
  Graph g = std::move(b).Build();
  Topology topo = MakeEc2Topology(4, Heterogeneity::kMedium);
  std::vector<DcId> locations(n);
  for (VertexId v = 0; v < n; ++v) locations[v] = static_cast<DcId>(v % 4);
  std::vector<double> sizes(n, 1e6);
  PartitionConfig config;
  config.theta = 4;
  PartitionState state(&g, &topo, &locations, &sizes, config);
  state.ResetDerived(locations);
  EXPECT_TRUE(state.is_high_degree(0));
  // Moving the hub around must keep invariants; each in-edge stays with
  // its source master (high-cut).
  for (DcId r = 0; r < 4; ++r) {
    state.MoveMaster(0, r);
    EXPECT_TRUE(state.CheckInvariants());
  }
}

// ---- DC-count boundaries ---------------------------------------------------

TEST(RobustnessTest, SixtyFourDataCenters) {
  // kMaxDataCenters boundary: bitmask arithmetic at bit 63.
  std::vector<DataCenter> dcs;
  for (int i = 0; i < 64; ++i) {
    dcs.push_back({"dc" + std::to_string(i), 1.0, 2.0, 0.1});
  }
  Topology topo(std::move(dcs));
  ASSERT_TRUE(topo.Validate().ok());

  Graph g = GenerateRing(128, 2);
  std::vector<DcId> locations(128);
  Rng rng(3);
  for (auto& l : locations) l = static_cast<DcId>(rng.UniformInt(64));
  std::vector<double> sizes(128, 1e6);
  PartitionConfig config;
  PartitionState state(&g, &topo, &locations, &sizes, config);
  state.ResetDerived(locations);
  for (int i = 0; i < 200; ++i) {
    state.MoveMaster(static_cast<VertexId>(rng.UniformInt(128)),
                     static_cast<DcId>(rng.UniformInt(64)));
  }
  EXPECT_TRUE(state.CheckInvariants());
  // Vertex 0's replicas can include DC 63.
  state.MoveMaster(0, 63);
  EXPECT_TRUE((state.ReplicaMask(0) >> 63) & 1);
}

TEST(RobustnessTest, TopologyRejectsTooManyDcs) {
  std::vector<DataCenter> dcs;
  for (int i = 0; i < 65; ++i) {
    dcs.push_back({"dc", 1.0, 2.0, 0.1});
  }
  EXPECT_FALSE(Topology(std::move(dcs)).Validate().ok());
}

// ---- Workload degeneracies ----------------------------------------------

TEST(RobustnessTest, ZeroIterationWorkloadHasZeroObjective) {
  Workload w;
  w.name = "empty";
  w.activity.clear();
  EXPECT_DOUBLE_EQ(w.TotalActivity(), 0.0);

  Graph g = GenerateRing(16, 1);
  Topology topo = MakeUniformTopology(2);
  std::vector<DcId> locations(16);
  for (VertexId v = 0; v < 16; ++v) locations[v] = v % 2;
  std::vector<double> sizes(16, 1e6);
  PartitionConfig config;
  config.workload = w;
  PartitionState state(&g, &topo, &locations, &sizes, config);
  state.ResetDerived(locations);
  const Objective obj = state.CurrentObjective();
  EXPECT_DOUBLE_EQ(obj.transfer_seconds, 0.0);
  EXPECT_DOUBLE_EQ(obj.cost_dollars, state.MoveCost());
}

// ---- Logging ---------------------------------------------------------------

TEST(RobustnessTest, LogLevelFiltering) {
  const LogLevel old_level = internal_logging::GetMinLogLevel();
  internal_logging::SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(internal_logging::GetMinLogLevel(), LogLevel::kError);
  // These must be no-ops (nothing observable to assert beyond absence
  // of a crash, but the calls exercise the discard path).
  RLCUT_LOG(kDebug) << "suppressed";
  RLCUT_LOG(kInfo) << "suppressed";
  internal_logging::SetMinLogLevel(old_level);
}

TEST(RobustnessTest, CheckMacroPassesOnTrue) {
  RLCUT_CHECK(1 + 1 == 2) << "never printed";
  RLCUT_CHECK_LE(1, 1);
  RLCUT_CHECK_NE(1, 2);
  SUCCEED();
}

TEST(RobustnessDeathTest, CheckMacroAbortsOnFalse) {
  EXPECT_DEATH(RLCUT_CHECK(false) << "boom", "CHECK failed");
  EXPECT_DEATH(RLCUT_CHECK_EQ(1, 2), "CHECK failed");
}

// ---- Trainer resilience ------------------------------------------------------

TEST(RobustnessTest, TrainerHandlesDisconnectedGraph) {
  GraphBuilder b(64);
  for (VertexId v = 0; v < 16; ++v) b.AddEdge(v, (v + 1) % 16);
  Graph g = std::move(b).Build();  // 48 isolated vertices
  Topology topo = MakeEc2Topology(4, Heterogeneity::kMedium);
  std::vector<DcId> locations(64);
  Rng rng(5);
  for (auto& l : locations) l = static_cast<DcId>(rng.UniformInt(4));
  std::vector<double> sizes(64, 1e6);
  PartitionConfig config;
  PartitionState state(&g, &topo, &locations, &sizes, config);
  state.ResetDerived(locations);
  RLCutOptions opt;
  opt.max_steps = 3;
  opt.batch_size = 8;
  RLCutTrainer trainer(opt);
  trainer.Train(&state);
  EXPECT_TRUE(state.CheckInvariants());
}

TEST(RobustnessTest, TrainerEligibleLargerThanGraphClamped) {
  Graph g = GenerateRing(16, 1);
  Topology topo = MakeUniformTopology(2);
  std::vector<DcId> locations(16, 0);
  std::vector<double> sizes(16, 1e6);
  PartitionConfig config;
  PartitionState state(&g, &topo, &locations, &sizes, config);
  state.ResetDerived(locations);
  // Duplicate eligible entries: the trainer must tolerate them.
  std::vector<VertexId> eligible;
  for (int rep = 0; rep < 3; ++rep) {
    for (VertexId v = 0; v < 16; ++v) eligible.push_back(v);
  }
  RLCutOptions opt;
  opt.max_steps = 2;
  RLCutTrainer trainer(opt);
  trainer.Train(&state, eligible);
  EXPECT_TRUE(state.CheckInvariants());
}

TEST(RobustnessTest, AutoThetaFullFractionSelectsEverything) {
  Graph g = GenerateRing(32, 2);
  const uint32_t theta = PartitionState::AutoTheta(g, 1.0);
  // Every vertex has in-degree 2; theta must still be a valid threshold.
  EXPECT_GE(theta, 2u);
}

TEST(RobustnessTest, SaveEdgeListToUnwritablePathFails) {
  Graph g = GenerateRing(4, 1);
  const Status s = SaveEdgeListFile(g, "/nonexistent-dir/out.el");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(RobustnessTest, WorkloadActivityScalingIsLinear) {
  Graph g = GenerateRing(16, 1);
  Topology topo = MakeUniformTopology(2);
  std::vector<DcId> locations(16);
  for (VertexId v = 0; v < 16; ++v) locations[v] = v % 2;
  std::vector<double> sizes(16, 1e6);

  PartitionConfig five;
  five.workload = Workload::PageRank(5);
  PartitionState s5(&g, &topo, &locations, &sizes, five);
  s5.ResetDerived(locations);

  PartitionConfig ten;
  ten.workload = Workload::PageRank(10);
  PartitionState s10(&g, &topo, &locations, &sizes, ten);
  s10.ResetDerived(locations);

  EXPECT_NEAR(s10.CurrentObjective().transfer_seconds,
              2 * s5.CurrentObjective().transfer_seconds, 1e-15);
}

TEST(RobustnessTest, HeterogeneityLevelsPreservePrices) {
  // Fig. 3 varies only bandwidths; prices must be identical across
  // profiles.
  Topology medium = MakeEc2Topology(Heterogeneity::kMedium);
  for (Heterogeneity level : {Heterogeneity::kLow, Heterogeneity::kHigh}) {
    Topology topo = MakeEc2Topology(level);
    for (int r = 0; r < topo.num_dcs(); ++r) {
      EXPECT_DOUBLE_EQ(topo.Price(r), medium.Price(r));
    }
  }
}

TEST(RobustnessTest, ResetIsRepeatable) {
  // Re-initializing a state must fully clear previous aggregates.
  PowerLawOptions opt;
  opt.num_vertices = 128;
  opt.num_edges = 1024;
  Graph g = GeneratePowerLaw(opt);
  Topology topo = MakeEc2Topology(4, Heterogeneity::kMedium);
  std::vector<DcId> locations(128);
  Rng rng(9);
  for (auto& l : locations) l = static_cast<DcId>(rng.UniformInt(4));
  std::vector<double> sizes(128, 1e6);
  PartitionConfig config;
  PartitionState state(&g, &topo, &locations, &sizes, config);
  state.ResetDerived(locations);
  const Objective first = state.CurrentObjective();
  for (int i = 0; i < 50; ++i) {
    state.MoveMaster(static_cast<VertexId>(rng.UniformInt(128)),
                     static_cast<DcId>(rng.UniformInt(4)));
  }
  state.ResetDerived(locations);
  const Objective second = state.CurrentObjective();
  EXPECT_DOUBLE_EQ(first.transfer_seconds, second.transfer_seconds);
  EXPECT_DOUBLE_EQ(first.cost_dollars, second.cost_dollars);
  EXPECT_TRUE(state.CheckInvariants());
}

}  // namespace
}  // namespace rlcut
