// Table II: the five experimental graphs. Prints the paper's original
// sizes next to the scaled stand-ins this reproduction instantiates,
// with degree-skew evidence (max in-degree vs mean).

#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "graph/datasets.h"

int main(int argc, char** argv) {
  using namespace rlcut;

  FlagParser flags;
  flags.DefineInt("scale", 0, "dataset down-scale factor (0 = default)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  std::cout << "=== Table II: experimented graphs (original -> scaled "
               "stand-in) ===\n";
  TableWriter table({"Graph", "|V|(paper)", "|E|(paper)", "scale",
                     "|V|(here)", "|E|(here)", "MaxInDeg", "MeanInDeg"});
  for (Dataset dataset : AllDatasets()) {
    const DatasetShape shape = GetDatasetShape(dataset);
    const uint64_t scale = flags.GetInt("scale") > 0
                               ? static_cast<uint64_t>(flags.GetInt("scale"))
                               : rlcut::bench::DefaultScale(dataset);
    Graph g = LoadDataset(dataset, scale);
    table.AddRow({DatasetName(dataset), Fmt(shape.num_vertices),
                  Fmt(shape.num_edges), Fmt(scale),
                  Fmt(static_cast<uint64_t>(g.num_vertices())),
                  Fmt(g.num_edges()),
                  Fmt(static_cast<uint64_t>(g.MaxInDegree())),
                  Fmt(static_cast<double>(g.num_edges()) / g.num_vertices(),
                      1)});
  }
  table.Print(std::cout);
  std::cout << "\nStand-ins preserve |E|/|V| and in-degree skew; see "
               "DESIGN.md substitutions.\n";
  return 0;
}
