// Fig. 4: hourly ratio of added edges in a Stack-Overflow-like temporal
// stream over one day. The paper observes a 5-10x spread between the
// busiest and quietest hour, motivating adaptivity.

#include <algorithm>
#include <iostream>

#include "common/table_writer.h"
#include "graph/temporal.h"

int main() {
  using namespace rlcut;

  TemporalStreamOptions opt;
  opt.num_vertices = 8192;
  opt.num_edges = 1 << 17;
  TemporalGraph stream = GenerateDiurnalStream(opt);
  const std::vector<uint64_t> hourly =
      stream.WindowCounts(opt.horizon_seconds, 3600.0);
  const uint64_t total = stream.edges().size();

  std::cout << "=== Fig. 4: hourly added-edge ratio (one simulated day) "
               "===\n";
  TableWriter table({"Hour", "AddedEdges", "RatioOfDay(%)"});
  for (size_t h = 0; h < hourly.size(); ++h) {
    table.AddRow({Fmt(static_cast<int64_t>(h)), Fmt(hourly[h]),
                  Fmt(100.0 * hourly[h] / total, 2)});
  }
  table.Print(std::cout);

  const uint64_t max_rate = *std::max_element(hourly.begin(), hourly.end());
  const uint64_t min_rate = *std::min_element(hourly.begin(), hourly.end());
  std::cout << "\nMax/min hourly rate: "
            << Fmt(static_cast<double>(max_rate) / min_rate, 2)
            << "x (paper: 5-10x)\n";
  return 0;
}
