// Fig. 3: inter-DC data transfer time of PageRank optimized by Ginger,
// normalized to RLCut, under Low/Medium/High network heterogeneity.
// The paper's point: the more heterogeneous the network (and the larger
// the graph), the further the load-balancing heuristic falls behind.

#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "rlcut/rlcut_partitioner.h"

int main(int argc, char** argv) {
  using namespace rlcut;
  using bench::MakeProblem;

  FlagParser flags;
  flags.DefineInt("scale", 0, "dataset down-scale factor (0 = default)");

  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  std::cout << "=== Fig. 3: Ginger transfer time normalized to RLCut ===\n";
  TableWriter table({"Graph", "Low", "Medium", "High"});
  for (Dataset dataset : AllDatasets()) {
    const uint64_t scale = flags.GetInt("scale") > 0
                               ? static_cast<uint64_t>(flags.GetInt("scale"))
                               : bench::DefaultScale(dataset);
    std::vector<std::string> row = {DatasetName(dataset)};
    for (Heterogeneity level :
         {Heterogeneity::kLow, Heterogeneity::kMedium, Heterogeneity::kHigh}) {
      const Topology topology = MakeEc2Topology(level);
      auto problem =
          MakeProblem(dataset, scale, topology, Workload::PageRank());
      PartitionOutput ginger =
          MakePartitionerByName("Ginger", {}).value()->RunOrDie(problem->ctx);
      // Deterministic work budget: stable tables run to run.
      RLCutOptions opt = bench::BenchRLCutOptionsDeterministic(
          problem->ctx.budget, problem->graph.num_vertices());
      RLCutRunOutput ours = RunRLCut(problem->ctx, opt);
      const double ratio =
          ginger.state.CurrentObjective().transfer_seconds /
          std::max(1e-12,
                   ours.state.CurrentObjective().transfer_seconds);
      row.push_back(Fmt(ratio, 2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nValues > 1 mean Ginger is slower than RLCut; the paper "
               "shows the gap widening with heterogeneity and graph "
               "size.\n";
  return 0;
}
