// Fig. 8: RLCut training overhead vs the number of agents participating
// in training (Twitter preset, PageRank). The paper finds overhead
// almost linear in the agent count, which motivates the sampling
// technique.

#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "rlcut/rlcut_partitioner.h"

int main(int argc, char** argv) {
  using namespace rlcut;
  using bench::MakeProblem;

  FlagParser flags;
  flags.DefineInt("scale", 0, "dataset down-scale factor (0 = default)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const uint64_t scale =
      flags.GetInt("scale") > 0
          ? static_cast<uint64_t>(flags.GetInt("scale"))
          : bench::DefaultScale(Dataset::kTwitter);

  const Topology topology = MakeEc2Topology();
  auto problem = MakeProblem(Dataset::kTwitter, scale, topology,
                             Workload::PageRank());

  std::cout << "=== Fig. 8: training overhead vs participating agents "
               "(TW preset, " << problem->graph.num_vertices()
            << " vertices) ===\n";
  TableWriter table({"AgentFraction(%)", "Agents", "Overhead(s)",
                     "Overhead/agent(us)"});
  for (double fraction : {0.01, 0.05, 0.10, 0.25, 0.50, 1.00}) {
    RLCutOptions opt;
    opt.budget = problem->ctx.budget;
    opt.max_steps = 3;
    opt.fixed_sample_rate = fraction;
    opt.convergence_epsilon = 0;
    RLCutRunOutput out = RunRLCut(problem->ctx, opt);
    uint64_t agents = 0;
    for (const StepStats& s : out.train.steps) agents += s.num_agents;
    table.AddRow({Fmt(100 * fraction, 0), Fmt(agents),
                  Fmt(out.train.overhead_seconds, 3),
                  Fmt(1e6 * out.train.overhead_seconds /
                          std::max<uint64_t>(1, agents),
                      2)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: overhead grows ~linearly with the number of "
               "agents (flat overhead-per-agent column).\n";
  return 0;
}
