// Async vs sync execution: PowerLyra exposes both a synchronous (BSP,
// global barriers — what Eq. 1 times) and an asynchronous engine. This
// bench runs SSSP and connected components in both modes over several
// partitionings and reports the barrier cost on the heterogeneous WAN:
// sync pays max-over-DCs per super-step; async overlaps everything but
// serializes messages on the links.

#include <iostream>
#include <memory>
#include <numeric>

#include "baselines/extra_partitioners.h"
#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "engine/async_engine.h"
#include "engine/gas_engine.h"
#include "engine/vertex_program.h"
#include "graph/transform.h"
#include "rlcut/rlcut_partitioner.h"

int main(int argc, char** argv) {
  using namespace rlcut;
  using bench::MakeProblem;

  FlagParser flags;
  flags.DefineString("graph", "LJ", "dataset preset");
  flags.DefineInt("scale", 2000, "dataset down-scale factor");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  Result<Dataset> dataset = ParseDataset(flags.GetString("graph"));
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }

  const Topology topology = MakeEc2Topology();
  auto problem = MakeProblem(*dataset,
                             static_cast<uint64_t>(flags.GetInt("scale")),
                             topology, Workload::Sssp());

  std::cout << "=== Sync (BSP) vs async execution, "
            << DatasetName(*dataset) << " preset, SSSP ===\n";
  TableWriter table({"Partitioner", "Sync(s)", "Async(s)", "Speedup",
                     "AsyncMsgs", "AsyncWAN(MB)"});

  auto evaluate = [&](const std::string& name, PartitionState state) {
    auto sync_program = MakeSssp(3);
    GasEngine sync_engine(&state);
    const double sync_time =
        sync_engine.Run(sync_program.get()).total_transfer_seconds;

    auto async_program = MakeSssp(3);
    AsyncGasEngine async_engine(&state);
    const AsyncRunResult async = async_engine.Run(async_program.get());

    table.AddRow({name, Fmt(sync_time, 7), Fmt(async.completion_seconds, 7),
                  Fmt(sync_time / std::max(1e-15, async.completion_seconds),
                      2),
                  Fmt(async.messages), Fmt(async.total_bytes / 1e6, 3)});
  };

  for (const char* name : {"RandPG", "HashPL", "Ginger"}) {
    evaluate(name,
             std::move(MakePartitionerByName(name)->RunOrDie(problem->ctx).state));
  }
  {
    RLCutOptions opt = bench::BenchRLCutOptionsDeterministic(
        problem->ctx.budget, problem->graph.num_vertices());
    evaluate("RLCut", std::move(RunRLCut(problem->ctx, opt).state));
  }
  table.Print(std::cout);
  std::cout << "\nSpeedup < 1 throughout: on the WAN, what async saves "
               "in barrier stalls it loses many times over by forfeiting "
               "gather aggregation (one message per relaxation instead "
               "of one combined message per mirror DC) and by "
               "label-correcting overshoot. This matches the sync-mode "
               "default of BSP geo-analytics systems; async pays off "
               "only when messages cannot be aggregated.\n";
  return 0;
}
