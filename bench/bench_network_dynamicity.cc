// Network dynamicity: does resuming the affected automata from their
// learned policies (warm start) recover from a topology event faster
// than retraining them from uniform policies (cold restart)?
//
// Protocol: train RLCut to convergence on the base topology, then apply
// a brownout to the DC holding the most masters (uplink/downlink cut to
// 25%). Both variants re-train only the vertices replicated in the
// degraded DC, under the same deterministic agent-visit budget; they
// differ only in the automaton pool they start from. The per-step
// objective trajectory and the steps-to-recovery are tabulated.
//
// Everything is deterministic (agent-visit budget, fixed seed), so the
// table is stable run to run.

#include <algorithm>
#include <iostream>
#include <numeric>
#include <vector>

#include "bench/bench_common.h"
#include "cloud/topology_schedule.h"
#include "common/logging.h"
#include "common/table_writer.h"
#include "partition/metrics.h"
#include "rlcut/automaton.h"
#include "rlcut/trainer.h"

namespace {

using namespace rlcut;
using bench::MakeProblem;
using bench::Problem;

// Per-step objective (transfer seconds) of re-training `affected` on
// `state`, starting from `pool`. Steps the trainer one step at a time
// through a TrainerSession so the trajectory can be sampled; stops when
// the run finishes on its own.
std::vector<double> RecoveryTrajectory(const RLCutOptions& options,
                                       PartitionState* state,
                                       const std::vector<VertexId>& affected,
                                       AutomatonPool* pool) {
  RLCutTrainer trainer(options);
  TrainerSession session;
  std::vector<double> trajectory;
  trajectory.push_back(state->TransferSecondsPerIteration());
  for (int step = 1; step <= options.max_steps; ++step) {
    session.stop_after_step = step;
    trainer.Train(state, affected, pool, &session);
    trajectory.push_back(state->TransferSecondsPerIteration());
    if (session.finished) break;
  }
  return trajectory;
}

// First step at which the trajectory comes within `tolerance` of
// `target`; trajectory.size() if it never does.
size_t StepsToRecover(const std::vector<double>& trajectory, double target,
                      double tolerance = 0.02) {
  for (size_t i = 0; i < trajectory.size(); ++i) {
    if (trajectory[i] <= target * (1.0 + tolerance)) return i;
  }
  return trajectory.size();
}

}  // namespace

int main() {
  const Topology base = MakeEc2Topology(8, Heterogeneity::kMedium);
  std::unique_ptr<Problem> problem =
      MakeProblem(Dataset::kLiveJournal, 2000, base, Workload::PageRank());
  const Graph& graph = problem->graph;

  RLCutOptions options = bench::BenchRLCutOptionsDeterministic(
      problem->ctx.budget, graph.num_vertices());

  // ---- Train to convergence on the base topology. ----------------------
  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = problem->ctx.theta;
  config.workload = problem->ctx.workload;
  PartitionState state(&graph, &base, &problem->locations,
                       &problem->input_sizes, config);
  state.ResetDerived(problem->locations);
  AutomatonPool trained_pool(graph.num_vertices(), base.num_dcs(), options);
  std::vector<VertexId> all(graph.num_vertices());
  std::iota(all.begin(), all.end(), 0u);
  RLCutTrainer(options).Train(&state, all, &trained_pool);
  const std::vector<DcId> trained_masters = state.masters();

  // ---- The event: brownout of the most-loaded DC. ----------------------
  DcId degraded = 0;
  for (DcId r = 1; r < state.num_dcs(); ++r) {
    if (state.MasterCount(r) > state.MasterCount(degraded)) degraded = r;
  }
  const TopologySchedule schedule =
      MakeBrownoutSchedule(base, degraded, /*start_step=*/0,
                           /*end_step=*/1000, /*bandwidth_factor=*/0.25);
  const Topology effective = schedule.EffectiveAt(0);
  const double drift = TopologyDrift(base, effective);
  const uint64_t changed = ChangedDcMask(base, effective, /*threshold=*/0.01);

  std::vector<VertexId> affected;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (state.ReplicaMask(v) & changed) affected.push_back(v);
  }

  std::cout << "=== Network dynamicity: warm resume vs cold restart ===\n"
            << "Graph LJ @1/2000: " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " edges; brownout of DC "
            << base.dc(degraded).name << " (bandwidth x0.25), drift="
            << Fmt(drift) << ", affected agents="
            << Fmt(static_cast<uint64_t>(affected.size())) << "\n\n";

  // ---- Recovery, warm vs cold. -----------------------------------------
  // Both variants: same post-event state (trained masters re-priced
  // under the degraded topology), same options, same budget over the
  // affected agents only. Only the starting pool differs.
  RLCutOptions recovery_options = bench::BenchRLCutOptionsDeterministic(
      problem->ctx.budget, affected.size());

  PartitionState warm_state(&graph, &effective, &problem->locations,
                            &problem->input_sizes, config);
  warm_state.ResetDerived(trained_masters);
  AutomatonPool warm_pool(graph.num_vertices(), base.num_dcs(),
                          recovery_options);
  RLCUT_CHECK(warm_pool.Restore(trained_pool.Snapshot()).ok());
  const std::vector<double> warm =
      RecoveryTrajectory(recovery_options, &warm_state, affected, &warm_pool);

  PartitionState cold_state(&graph, &effective, &problem->locations,
                            &problem->input_sizes, config);
  cold_state.ResetDerived(trained_masters);
  AutomatonPool cold_pool(graph.num_vertices(), base.num_dcs(),
                          recovery_options);
  const std::vector<double> cold =
      RecoveryTrajectory(recovery_options, &cold_state, affected, &cold_pool);

  TableWriter table({"Step", "Warm(s)", "Cold(s)"});
  const size_t rows = std::max(warm.size(), cold.size());
  for (size_t i = 0; i < rows; ++i) {
    table.AddRow({Fmt(static_cast<int64_t>(i)),
                  i < warm.size() ? Fmt(warm[i], 6) : "-",
                  i < cold.size() ? Fmt(cold[i], 6) : "-"});
  }
  table.Print(std::cout);

  const double warm_final = warm.back();
  const double cold_final = cold.back();
  const double target = std::min(warm_final, cold_final);
  const size_t warm_recovery = StepsToRecover(warm, target);
  const size_t cold_recovery = StepsToRecover(cold, target);

  std::cout << "\nFinal objective: warm=" << Fmt(warm_final, 6)
            << "s cold=" << Fmt(cold_final, 6) << "s\n"
            << "Steps to within 2% of best final: warm="
            << Fmt(static_cast<uint64_t>(warm_recovery))
            << " cold=" << Fmt(static_cast<uint64_t>(cold_recovery)) << "\n"
            << (warm_final <= cold_final && warm_recovery <= cold_recovery
                    ? "Resume-from-policy recovers at least as fast as a "
                      "cold restart.\n"
                    : "WARNING: cold restart beat the warm resume on this "
                      "instance.\n");
  return 0;
}
