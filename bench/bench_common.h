#ifndef RLCUT_BENCH_BENCH_COMMON_H_
#define RLCUT_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/partitioner.h"
#include "cloud/topology.h"
#include "graph/datasets.h"
#include "graph/geo.h"
#include "partition/workload.h"
#include "rlcut/options.h"

namespace rlcut {
namespace bench {

/// A fully materialized problem instance: graph + topology + locations +
/// sizes + budget, owning all storage the PartitionerContext points to.
struct Problem {
  Graph graph;
  Topology topology;
  std::vector<DcId> locations;
  std::vector<double> input_sizes;
  double centralized_move_cost = 0;
  PartitionerContext ctx;

  Problem(const Problem&) = delete;
  Problem& operator=(const Problem&) = delete;
  Problem(Problem&&) = delete;
  Problem& operator=(Problem&&) = delete;
  Problem() = default;
};

/// Builds a problem over a dataset preset. `budget_fraction` is relative
/// to the centralized-move cost (Sec. VI-A4; default 40%).
std::unique_ptr<Problem> MakeProblem(Dataset dataset, uint64_t scale,
                                     const Topology& topology,
                                     const Workload& workload,
                                     double budget_fraction = 0.4,
                                     uint64_t seed = 42);

/// Builds a problem over an arbitrary graph.
std::unique_ptr<Problem> MakeProblem(Graph graph, const Topology& topology,
                                     const Workload& workload,
                                     double budget_fraction = 0.4,
                                     uint64_t seed = 42);

/// Cost of moving every vertex's input data to the cheapest-upload DC —
/// the paper's anchor for the budget parameter.
double CentralizedMoveCost(const Graph& graph,
                           const std::vector<DcId>& locations,
                           const std::vector<double>& input_sizes,
                           const Topology& topology);

/// RLCut options used across benches: paper defaults plus a T_opt floor.
/// On scaled-down graphs the heuristic baselines finish in milliseconds,
/// so T_opt = Ginger's overhead alone would starve the trainer; benches
/// therefore use max(t_opt_floor, multiplier * ginger_overhead), both
/// reported in the output.
RLCutOptions BenchRLCutOptions(double budget, double ginger_overhead,
                               double t_opt_floor = 0.25,
                               double multiplier = 1.0);

/// Deterministic variant: a fixed agent-visit budget of
/// visits_per_vertex * num_eligible spread over the training steps.
/// Exactly reproducible across machines (unlike wall-clock T_opt), used
/// by the comparison benches so that tables are stable run to run.
RLCutOptions BenchRLCutOptionsDeterministic(double budget,
                                            uint64_t num_eligible,
                                            double visits_per_vertex = 10.0);

/// Default per-dataset scale factor used when the --scale flag is 0:
/// keeps every bench binary in the tens-of-seconds range.
uint64_t DefaultScale(Dataset dataset);

}  // namespace bench
}  // namespace rlcut

#endif  // RLCUT_BENCH_BENCH_COMMON_H_
