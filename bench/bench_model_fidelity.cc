// Model fidelity: the partitioners optimize against the analytical
// Eq. 1-5 traffic model (static per-vertex messages x per-iteration
// activity). This bench executes the real GAS engine on each produced
// partitioning and compares the *predicted* transfer time/WAN/cost with
// the *realized* values, per method and workload. The model is only
// useful if the ranking it induces matches the realized ranking.

#include <iostream>
#include <memory>

#include "baselines/extra_partitioners.h"
#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "engine/gas_engine.h"
#include "engine/vertex_program.h"
#include "rlcut/rlcut_partitioner.h"

namespace {

using namespace rlcut;

std::unique_ptr<VertexProgram> MakeProgram(const std::string& name,
                                           int iterations) {
  if (name == "PR") return MakePageRank(iterations);
  if (name == "SSSP") return MakeSssp(/*source=*/0, iterations);
  return MakeSubgraphIsomorphism();
}

}  // namespace

int main(int argc, char** argv) {
  using bench::MakeProblem;

  FlagParser flags;
  flags.DefineString("graph", "LJ", "dataset preset");
  flags.DefineInt("scale", 2000, "dataset down-scale factor");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  Result<Dataset> dataset = ParseDataset(flags.GetString("graph"));
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }

  const Topology topology = MakeEc2Topology();
  for (const Workload& workload : Workload::AllPaperWorkloads()) {
    auto problem = MakeProblem(*dataset,
                               static_cast<uint64_t>(flags.GetInt("scale")),
                               topology, workload);
    std::cout << "=== Model fidelity (" << DatasetName(*dataset) << ", "
              << workload.name << ") ===\n";
    TableWriter table({"Method", "PredictedT(s)", "RealizedT(s)",
                       "T-ratio", "PredictedWAN(MB)", "RealizedWAN(MB)"});

    // Track rank agreement between predicted and realized transfer.
    std::vector<std::pair<double, double>> pairs;  // (predicted, realized)

    auto evaluate = [&](const std::string& name, PartitionState state) {
      auto program =
          MakeProgram(workload.name, workload.num_iterations());
      GasEngine engine(&state);
      const RunResult run = engine.Run(program.get());
      const Objective predicted = state.CurrentObjective();
      const double predicted_wan =
          state.WanBytesPerIteration() * workload.TotalActivity();
      table.AddRow(
          {name, Fmt(predicted.transfer_seconds, 6),
           Fmt(run.total_transfer_seconds, 6),
           Fmt(run.total_transfer_seconds /
                   std::max(1e-15, predicted.transfer_seconds),
               2),
           Fmt(predicted_wan / 1e6, 3), Fmt(run.total_wan_bytes / 1e6, 3)});
      pairs.push_back(
          {predicted.transfer_seconds, run.total_transfer_seconds});
    };

    for (const char* name : {"RandPG", "HashPL", "Ginger", "Spinner"}) {
      auto partitioner = MakePartitionerByName(name);
      evaluate(name, std::move(partitioner->RunOrDie(problem->ctx).state));
    }
    {
      RLCutOptions opt = bench::BenchRLCutOptionsDeterministic(
          problem->ctx.budget, problem->graph.num_vertices());
      evaluate("RLCut", std::move(RunRLCut(problem->ctx, opt).state));
    }

    table.Print(std::cout);

    // Kendall-tau-style concordance over method pairs.
    int concordant = 0;
    int total = 0;
    for (size_t i = 0; i < pairs.size(); ++i) {
      for (size_t j = i + 1; j < pairs.size(); ++j) {
        ++total;
        const bool same_order = (pairs[i].first < pairs[j].first) ==
                                (pairs[i].second < pairs[j].second);
        if (same_order) ++concordant;
      }
    }
    std::cout << "Rank concordance (predicted vs realized transfer): "
              << concordant << "/" << total << " method pairs\n\n";
  }
  std::cout << "T-ratio < 1 is expected: the model assumes every replica "
               "syncs at the modeled activity every iteration, while the "
               "engine only ships messages for vertices that actually "
               "changed.\n";
  return 0;
}
