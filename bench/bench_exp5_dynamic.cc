// Exp#5 (Fig. 15): dynamic graphs. 70% of the LiveJournal preset forms
// the initial graph; 1%-30% of the remaining edges arrive in one window
// that must be re-partitioned within the window budget. Compares RLCut's
// budget-aware adaptation with Spinner's best-effort label propagation.

#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "graph/temporal.h"
#include "rlcut/dynamic.h"

int main(int argc, char** argv) {
  using namespace rlcut;

  FlagParser flags;
  flags.DefineInt("scale", 2000, "dataset down-scale factor");
  flags.DefineDouble("window_budget", 0.5,
                     "per-window adaptation budget, seconds (the paper's "
                     "60 s window scaled down with the graphs)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double window_budget = flags.GetDouble("window_budget");

  Graph full = LoadDataset(Dataset::kLiveJournal,
                           static_cast<uint64_t>(flags.GetInt("scale")));
  const Topology topology = MakeEc2Topology();
  GeoLocatorOptions geo;
  geo.num_dcs = topology.num_dcs();
  const std::vector<DcId> locations = AssignGeoLocations(full, geo);
  const GraphSplit split = SplitEdges(full, 0.7, 21);
  const uint32_t theta = PartitionState::AutoTheta(full);

  std::cout << "=== Fig. 15: dynamic adaptation, LJ preset ("
            << split.initial_edges.size() << " initial edges, window "
            << "budget " << window_budget << " s; Leopard added as an "
            << "extra dynamic baseline) ===\n";
  TableWriter table({"Insert(%)", "NewEdges", "RLCut-T(s)", "Spinner-T(s)",
                     "Leopard-T(s)", "T-reduction(%)", "RLCut-ovh(s)",
                     "Spinner-ovh(s)", "Leopard-ovh(s)"});

  for (double insert_fraction : {0.01, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30}) {
    const size_t count = static_cast<size_t>(
        insert_fraction * static_cast<double>(split.remaining_edges.size()));
    std::vector<Edge> window(split.remaining_edges.begin(),
                             split.remaining_edges.begin() + count);

    RLCutOptions initial_opt;
    initial_opt.max_steps = 8;
    RLCutOptions window_opt;
    window_opt.max_steps = 10;
    window_opt.t_opt_seconds = window_budget;
    RLCutDynamicDriver ours(&topology, Workload::PageRank(), theta, 5,
                            initial_opt, window_opt);
    ours.Initialize(full.num_vertices(), split.initial_edges, locations);
    const WindowResult r_ours = ours.InsertWindow(window);

    SpinnerDynamicDriver theirs(&topology, Workload::PageRank(), theta, 5,
                                SpinnerOptions{});
    theirs.Initialize(full.num_vertices(), split.initial_edges, locations);
    const WindowResult r_theirs = theirs.InsertWindow(window);

    LeopardDynamicDriver leopard(&topology, Workload::PageRank(), theta, 5);
    leopard.Initialize(full.num_vertices(), split.initial_edges, locations);
    const WindowResult r_leopard = leopard.InsertWindow(window);

    table.AddRow(
        {Fmt(100 * insert_fraction, 0), Fmt(r_ours.inserted_edges),
         Fmt(r_ours.transfer_seconds, 6),
         Fmt(r_theirs.transfer_seconds, 6),
         Fmt(r_leopard.transfer_seconds, 6),
         Fmt(100 * (1 - r_ours.transfer_seconds /
                            std::max(1e-12, r_theirs.transfer_seconds)),
             1),
         Fmt(r_ours.overhead_seconds, 3),
         Fmt(r_theirs.overhead_seconds, 3),
         Fmt(r_leopard.overhead_seconds, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: RLCut cuts transfer time 43-60% vs Spinner, "
               "keeps quality stable as inserts grow, and meets the window "
               "budget; Spinner's overhead follows the insert volume "
               "instead of the budget.\n";

  // ---- Edge deletions ("similar observations", Sec. VI-C4) --------------
  std::cout << "\n=== Fig. 15 (deletions): removing 1-30% of the initial "
               "edges in one window ===\n";
  TableWriter del_table({"Delete(%)", "RemovedEdges", "RLCut-T(s)",
                         "Spinner-T(s)", "T-reduction(%)"});
  for (double delete_fraction : {0.01, 0.10, 0.30}) {
    const size_t count = static_cast<size_t>(
        delete_fraction * static_cast<double>(split.initial_edges.size()));
    std::vector<Edge> window(split.initial_edges.begin(),
                             split.initial_edges.begin() + count);

    RLCutOptions initial_opt;
    initial_opt.max_steps = 8;
    RLCutOptions window_opt;
    window_opt.max_steps = 10;
    window_opt.t_opt_seconds = window_budget;
    RLCutDynamicDriver ours(&topology, Workload::PageRank(), theta, 5,
                            initial_opt, window_opt);
    ours.Initialize(full.num_vertices(), split.initial_edges, locations);
    const WindowResult r_ours = ours.RemoveWindow(window);

    SpinnerDynamicDriver theirs(&topology, Workload::PageRank(), theta, 5,
                                SpinnerOptions{});
    theirs.Initialize(full.num_vertices(), split.initial_edges, locations);
    const WindowResult r_theirs = theirs.RemoveWindow(window);

    del_table.AddRow(
        {Fmt(100 * delete_fraction, 0), Fmt(r_ours.inserted_edges),
         Fmt(r_ours.transfer_seconds, 6),
         Fmt(r_theirs.transfer_seconds, 6),
         Fmt(100 * (1 - r_ours.transfer_seconds /
                            std::max(1e-12, r_theirs.transfer_seconds)),
             1)});
  }
  del_table.Print(std::cout);
  return 0;
}
