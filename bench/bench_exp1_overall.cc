// Exp#1 (Figs. 10, 11 and Table III): overall comparison of RLCut with
// the six baselines over five graphs x three workloads on the 8-region
// EC2 topology.
//
//  * Fig. 10: inter-DC transfer time, normalized to RandPG.
//  * Fig. 11: total monetary cost, normalized to the budget.
//  * Table III: optimization overhead in seconds (PageRank).
//
// Like the paper, Geo-Cut and Revolver run only on the two smaller
// graphs (LJ, OT) because their overhead is disproportionate.

#include <iostream>
#include <map>
#include <memory>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "rlcut/rlcut_partitioner.h"

namespace {

using namespace rlcut;

struct CellResult {
  double transfer = 0;
  double cost = 0;
  double overhead = 0;
  bool ran = false;
};

}  // namespace

int main(int argc, char** argv) {
  using bench::MakeProblem;

  FlagParser flags;
  flags.DefineInt("scale", 0, "dataset down-scale factor (0 = default)");
  flags.DefineDouble("t_opt_floor", 0.25,
                     "minimum RLCut time budget, seconds (unused in the "
                     "deterministic mode)");
  flags.DefineDouble("visits_per_vertex", 10.0,
                     "RLCut agent-visit budget per vertex");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  const Topology topology = MakeEc2Topology();
  const std::vector<Workload> workloads = Workload::AllPaperWorkloads();
  // Columns: the registry's paper comparisons (Fig. 10 order), then ours.
  std::vector<std::string> methods;
  for (const PartitionerInfo& info : ListPartitioners()) {
    if (info.paper_comparison) methods.push_back(info.name);
  }
  methods.push_back("RLCut");

  // results[workload][dataset][method]
  std::map<std::string, std::map<std::string, std::map<std::string, CellResult>>>
      results;
  std::map<std::string, double> budgets;

  for (Dataset dataset : AllDatasets()) {
    const std::string graph_name = DatasetName(dataset);
    const bool small_graph = dataset == Dataset::kLiveJournal ||
                             dataset == Dataset::kOrkut;
    const uint64_t scale = flags.GetInt("scale") > 0
                               ? static_cast<uint64_t>(flags.GetInt("scale"))
                               : bench::DefaultScale(dataset);
    for (const Workload& workload : workloads) {
      auto problem = MakeProblem(dataset, scale, topology, workload);
      budgets[graph_name] = problem->ctx.budget;
      double ginger_overhead = 0;

      for (const PartitionerInfo& info : ListPartitioners()) {
        if (!info.paper_comparison) continue;
        const std::string& name = info.name;
        if (!small_graph && (name == "Geo-Cut" || name == "Revolver")) {
          continue;  // paper: overhead too large for the big graphs
        }
        auto baseline = MakePartitionerByName(name, {}).value();
        PartitionOutput out = baseline->RunOrDie(problem->ctx);
        const Objective obj = out.state.CurrentObjective();
        results[workload.name][graph_name][name] = {
            obj.transfer_seconds, obj.cost_dollars, out.overhead_seconds,
            true};
        if (name == "Ginger") ginger_overhead = out.overhead_seconds;
      }

      // Deterministic work budget so the tables are stable run to run;
      // the measured seconds still land in Table III. The paper instead
      // ties T_opt to Ginger's (wall-clock) overhead; see EXPERIMENTS.md.
      (void)ginger_overhead;
      (void)flags.GetDouble("t_opt_floor");
      RLCutOptions opt = bench::BenchRLCutOptionsDeterministic(
          problem->ctx.budget, problem->graph.num_vertices(),
          flags.GetDouble("visits_per_vertex"));
      RLCutRunOutput ours = RunRLCut(problem->ctx, opt);
      const Objective obj = ours.state.CurrentObjective();
      results[workload.name][graph_name]["RLCut"] = {
          obj.transfer_seconds, obj.cost_dollars,
          ours.train.overhead_seconds, true};
    }
  }

  // ---- Fig. 10 -----------------------------------------------------------
  for (const Workload& workload : workloads) {
    std::cout << "=== Fig. 10 (" << workload.name
              << "): inter-DC transfer time normalized to RandPG ===\n";
    std::vector<std::string> header = {"Graph"};
    header.insert(header.end(), methods.begin(), methods.end());
    TableWriter table(header);
    for (Dataset dataset : AllDatasets()) {
      const std::string graph_name = DatasetName(dataset);
      const auto& row_data = results[workload.name][graph_name];
      const double base = row_data.at("RandPG").transfer;
      std::vector<std::string> row = {graph_name};
      for (const std::string& m : methods) {
        auto it = row_data.find(m);
        row.push_back(it == row_data.end() || !it->second.ran
                          ? "-"
                          : Fmt(it->second.transfer / base, 3));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  // ---- Fig. 11 -----------------------------------------------------------
  for (const Workload& workload : workloads) {
    std::cout << "=== Fig. 11 (" << workload.name
              << "): total cost normalized to the budget (<=1 means "
                 "within budget) ===\n";
    std::vector<std::string> header = {"Graph"};
    header.insert(header.end(), methods.begin(), methods.end());
    TableWriter table(header);
    for (Dataset dataset : AllDatasets()) {
      const std::string graph_name = DatasetName(dataset);
      const auto& row_data = results[workload.name][graph_name];
      std::vector<std::string> row = {graph_name};
      for (const std::string& m : methods) {
        auto it = row_data.find(m);
        row.push_back(it == row_data.end() || !it->second.ran
                          ? "-"
                          : Fmt(it->second.cost / budgets[graph_name], 3));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  // ---- Table III -----------------------------------------------------------
  std::cout << "=== Table III: optimization overhead (s), PageRank ===\n";
  std::vector<std::string> header = {"Graph"};
  header.insert(header.end(), methods.begin(), methods.end());
  TableWriter table(header);
  for (Dataset dataset : AllDatasets()) {
    const std::string graph_name = DatasetName(dataset);
    const auto& row_data = results["PR"][graph_name];
    std::vector<std::string> row = {graph_name};
    for (const std::string& m : methods) {
      auto it = row_data.find(m);
      row.push_back(it == row_data.end() || !it->second.ran
                        ? "-"
                        : Fmt(it->second.overhead, 3));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: RLCut lowest transfer time everywhere, "
               "within budget; hash/greedy hybrid methods cheap but "
               "costly on WAN; Geo-Cut/Revolver order-of-magnitude "
               "slower to partition.\n";
  return 0;
}
