// Exp#4 (Figs. 13 and 14): sensitivity to the required optimization
// overhead T_opt. T_opt sweeps {1x, 10x, 20x, 50x} of a base budget;
// Fig. 13 reports the normalized transfer time / cost, Fig. 14 the
// adaptive sampling rate chosen per iteration and the per-iteration
// overhead/SR proportion.

#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "rlcut/rlcut_partitioner.h"

int main(int argc, char** argv) {
  using namespace rlcut;
  using bench::MakeProblem;

  FlagParser flags;
  flags.DefineInt("scale", 2000, "dataset down-scale factor");
  flags.DefineDouble("base_t_opt", 0.05, "1x time budget, seconds");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const uint64_t scale =
      flags.GetInt("scale") > 0
          ? static_cast<uint64_t>(flags.GetInt("scale"))
          : bench::DefaultScale(Dataset::kTwitter);
  const double base = flags.GetDouble("base_t_opt");

  const Topology topology = MakeEc2Topology();
  auto problem = MakeProblem(Dataset::kTwitter, scale, topology,
                             Workload::PageRank());

  struct Run {
    int multiple;
    RLCutRunOutput out;
  };
  std::vector<Run> runs;
  for (int multiple : {1, 10, 20, 50}) {
    RLCutOptions opt;
    opt.budget = problem->ctx.budget;
    opt.max_steps = 10;
    opt.t_opt_seconds = base * multiple;
    opt.convergence_epsilon = 0;
    runs.push_back({multiple, RunRLCut(problem->ctx, opt)});
  }

  const double t1 =
      runs[0].out.state.CurrentObjective().transfer_seconds;

  std::cout << "=== Fig. 13: results vs required overhead T_opt "
               "(transfer normalized to 1x; cost normalized to the "
               "budget) ===\n";
  TableWriter f13({"T_opt", "Transfer(norm)", "Cost/B",
                   "MeasuredOverhead(s)"});
  for (const Run& r : runs) {
    const Objective obj = r.out.state.CurrentObjective();
    f13.AddRow({Fmt(static_cast<int64_t>(r.multiple)) + "x",
                Fmt(obj.transfer_seconds / t1, 3),
                Fmt(obj.cost_dollars / problem->ctx.budget, 3),
                Fmt(r.out.train.overhead_seconds, 3)});
  }
  f13.Print(std::cout);
  std::cout << "\nPaper shape: transfer time falls by up to ~43% as T_opt "
               "grows 1x -> 50x, and measured overhead tracks T_opt.\n";

  std::cout << "\n=== Fig. 14a: sampling rate adaptively chosen per "
               "iteration ===\n";
  {
    std::vector<std::string> header = {"Step"};
    for (const Run& r : runs) {
      header.push_back(Fmt(static_cast<int64_t>(r.multiple)) + "x");
    }
    TableWriter f14(header);
    size_t max_steps = 0;
    for (const Run& r : runs) {
      max_steps = std::max(max_steps, r.out.train.steps.size());
    }
    for (size_t i = 0; i < max_steps; ++i) {
      std::vector<std::string> row = {Fmt(static_cast<int64_t>(i))};
      for (const Run& r : runs) {
        row.push_back(i < r.out.train.steps.size()
                          ? Fmt(r.out.train.steps[i].sample_rate, 4)
                          : "-");
      }
      f14.AddRow(row);
    }
    f14.Print(std::cout);
  }

  std::cout << "\n=== Fig. 14b: overhead / sampling-rate proportion per "
               "iteration (50x run) ===\n";
  {
    TableWriter f14b({"Step", "SR", "StepSeconds", "Seconds/SR"});
    for (const StepStats& s : runs.back().out.train.steps) {
      f14b.AddRow({Fmt(static_cast<int64_t>(s.step)),
                   Fmt(s.sample_rate, 4), Fmt(s.seconds, 4),
                   Fmt(s.seconds / std::max(1e-9, s.sample_rate), 4)});
    }
    f14b.Print(std::cout);
  }
  std::cout << "\nPaper shape: SR rises across iterations and the "
               "seconds-per-SR proportion shrinks near convergence "
               "(fewer vertices migrate).\n";
  return 0;
}
