// Ablation of the design choices DESIGN.md calls out, on the Twitter
// preset with PageRank: each row disables one mechanism of the trainer
// and reports the resulting transfer time (normalized to the full
// configuration), budget adherence and overhead.

#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "rlcut/rlcut_partitioner.h"

int main(int argc, char** argv) {
  using namespace rlcut;
  using bench::MakeProblem;

  FlagParser flags;
  flags.DefineInt("scale", 0, "dataset down-scale factor (0 = default)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const uint64_t scale =
      flags.GetInt("scale") > 0
          ? static_cast<uint64_t>(flags.GetInt("scale"))
          : bench::DefaultScale(Dataset::kTwitter);

  const Topology topology = MakeEc2Topology();
  auto problem = MakeProblem(Dataset::kTwitter, scale, topology,
                             Workload::PageRank());

  auto base_options = [&] {
    return bench::BenchRLCutOptionsDeterministic(
        problem->ctx.budget, problem->graph.num_vertices());
  };

  struct Variant {
    const char* name;
    RLCutOptions options;
  };
  std::vector<Variant> variants;
  variants.push_back({"full (default)", base_options()});
  {
    RLCutOptions o = base_options();
    o.smooth_weight = 0;
    variants.push_back({"no smooth surrogate", o});
  }
  {
    RLCutOptions o = base_options();
    o.hub_slot_fraction = 0;
    variants.push_back({"no hub slots (paper sampling)", o});
  }
  {
    RLCutOptions o = base_options();
    o.budget_pressure = false;
    variants.push_back({"no budget pressure (Eq.10 cost)", o});
  }
  {
    RLCutOptions o = base_options();
    o.smooth_weight = 0;
    o.hub_slot_fraction = 0;
    o.budget_pressure = false;
    variants.push_back({"paper-exact Eq.10", o});
  }
  {
    RLCutOptions o = base_options();
    o.use_penalty = true;
    variants.push_back({"penalty updates (Eq.8+9)", o});
  }
  {
    RLCutOptions o = base_options();
    o.selection = ActionSelection::kGreedy;
    variants.push_back({"greedy selection (no UCB)", o});
  }
  {
    RLCutOptions o = base_options();
    o.straggler_mitigation = false;
    variants.push_back({"no straggler mitigation", o});
  }

  double baseline_transfer = 0;
  std::cout << "=== Design ablation (TW preset, PR, deterministic "
               "work budget) ===\n";
  TableWriter table({"Variant", "Transfer(norm)", "Cost/B", "Overhead(s)",
                     "Migrations"});
  for (const Variant& variant : variants) {
    RLCutRunOutput out = RunRLCut(problem->ctx, variant.options);
    const Objective obj = out.state.CurrentObjective();
    if (baseline_transfer == 0) baseline_transfer = obj.transfer_seconds;
    uint64_t migrations = 0;
    for (const StepStats& s : out.train.steps) migrations += s.migrations;
    table.AddRow({variant.name,
                  Fmt(obj.transfer_seconds / baseline_transfer, 3),
                  Fmt(obj.cost_dollars / problem->ctx.budget, 3),
                  Fmt(out.train.overhead_seconds, 3), Fmt(migrations)});
  }
  table.Print(std::cout);
  std::cout << "\n>1 in Transfer(norm) means the ablated variant is worse "
               "than the full configuration.\n";
  return 0;
}
