// Fig. 6: convergence of the penalty-update variant (Eq. 8+9) vs the
// reward-only update (Eq. 12). The paper shows the penalty variant
// needing ~30x more iterations to reach the same transfer time, which
// justifies dropping penalty updates. Also sweeps the action-selection
// strategies as the ablation DESIGN.md calls out.

#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "rlcut/rlcut_partitioner.h"

int main(int argc, char** argv) {
  using namespace rlcut;
  using bench::MakeProblem;

  FlagParser flags;
  flags.DefineInt("scale", 2000, "dataset down-scale factor");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  const Topology topology = MakeEc2Topology();
  auto problem = MakeProblem(Dataset::kLiveJournal,
                             static_cast<uint64_t>(flags.GetInt("scale")),
                             topology, Workload::PageRank());

  auto run = [&](bool use_penalty, int steps,
                 ActionSelection sel) -> double {
    RLCutOptions opt;
    opt.budget = problem->ctx.budget;
    opt.max_steps = steps;
    opt.use_penalty = use_penalty;
    opt.selection = sel;
    opt.convergence_epsilon = 0;  // run all steps
    RLCutRunOutput out = RunRLCut(problem->ctx, opt);
    return out.state.CurrentObjective().transfer_seconds;
  };

  const double baseline =
      run(false, 10, ActionSelection::kUcbBlend);

  // The penalty's convergence drag acts through the probability vector,
  // so this comparison samples actions from it directly (probability
  // selection); UCB would mask the difference.
  std::cout << "=== Fig. 6: penalty-update convergence (transfer time "
               "normalized to reward-only @10 steps) ===\n";
  TableWriter table({"Steps", "WithPenalty", "WithoutPenalty"});
  for (int steps : {1, 2, 5, 10, 20, 40}) {
    table.AddRow(
        {Fmt(static_cast<int64_t>(steps)),
         Fmt(run(true, steps, ActionSelection::kProbability) / baseline, 3),
         Fmt(run(false, steps, ActionSelection::kProbability) / baseline,
             3)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: the penalty variant needs many more "
               "iterations to match the reward-only result.\n";

  std::cout << "\n=== Ablation: action-selection strategy @10 steps "
               "(normalized) ===\n";
  TableWriter sel_table({"Selection", "NormalizedTransfer"});
  for (auto [name, sel] :
       {std::pair{"ucb_blend", ActionSelection::kUcbBlend},
        std::pair{"ucb_score", ActionSelection::kUcbScore},
        std::pair{"probability", ActionSelection::kProbability},
        std::pair{"greedy", ActionSelection::kGreedy}}) {
    sel_table.AddRow({name, Fmt(run(false, 10, sel) / baseline, 3)});
  }
  sel_table.Print(std::cout);
  return 0;
}
