// Fig. 9: data transfer time and training overhead when only the k%
// lowest-degree agents participate. The paper finds the transfer time
// drops sharply up to k=10 and flattens after — high-degree agents
// contribute little. A highest-degree-first ablation shows the contrast.

#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "rlcut/rlcut_partitioner.h"

int main(int argc, char** argv) {
  using namespace rlcut;
  using bench::MakeProblem;

  FlagParser flags;
  flags.DefineInt("scale", 0, "dataset down-scale factor (0 = default)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const uint64_t scale =
      flags.GetInt("scale") > 0
          ? static_cast<uint64_t>(flags.GetInt("scale"))
          : bench::DefaultScale(Dataset::kTwitter);

  const Topology topology = MakeEc2Topology();
  auto problem = MakeProblem(Dataset::kTwitter, scale, topology,
                             Workload::PageRank());

  auto run = [&](double fraction, bool highest_first) {
    RLCutOptions opt;
    opt.budget = problem->ctx.budget;
    opt.max_steps = 5;
    opt.fixed_sample_rate = fraction;
    opt.sample_highest_degree_first = highest_first;
    opt.convergence_epsilon = 0;
    return RunRLCut(problem->ctx, opt);
  };

  std::cout << "=== Fig. 9: lowest-k% degree sampling (TW preset) ===\n";
  TableWriter table({"k(%)", "Transfer(s)", "Overhead(s)",
                     "Transfer(high-deg-first)"});
  for (double k : {0.01, 0.05, 0.10, 0.20, 0.50, 1.00}) {
    RLCutRunOutput low = run(k, false);
    RLCutRunOutput high = run(k, true);
    table.AddRow(
        {Fmt(100 * k, 0),
         Fmt(low.state.CurrentObjective().transfer_seconds, 6),
         Fmt(low.train.overhead_seconds, 3),
         Fmt(high.state.CurrentObjective().transfer_seconds, 6)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: transfer time flattens beyond k~10-20% while "
               "overhead keeps growing; sampling high-degree agents first "
               "helps less per agent.\n";
  return 0;
}
