// Fig. 1: number of edges between the eight DCs when vertices of a
// Twitter-like graph sit at their real geographic locations. Reproduces
// the ">75% of edges are inter-DC" observation driving the paper.

#include <iostream>

#include "common/flags.h"
#include "common/table_writer.h"
#include "graph/datasets.h"
#include "graph/geo.h"

int main(int argc, char** argv) {
  using namespace rlcut;

  FlagParser flags;
  flags.DefineInt("scale", 8000, "dataset down-scale factor");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  Graph graph = LoadDataset(Dataset::kTwitter,
                            static_cast<uint64_t>(flags.GetInt("scale")));
  GeoLocatorOptions geo;  // default 8-region popularity + homophily
  std::vector<DcId> locations = AssignGeoLocations(graph, geo);
  const GeoEdgeStats stats =
      ComputeGeoEdgeStats(graph, locations, geo.num_dcs);

  std::cout << "=== Fig. 1: inter-DC edge matrix (Twitter preset, "
            << graph.num_vertices() << " vertices, " << graph.num_edges()
            << " edges, 8 regions) ===\n";
  const char* regions[] = {"SA", "USW", "USE", "AF", "OC", "NA", "AS", "EU"};
  std::vector<std::string> header = {"from\\to"};
  for (const char* r : regions) header.push_back(r);
  TableWriter table(header);
  for (int i = 0; i < geo.num_dcs; ++i) {
    std::vector<std::string> row = {regions[i]};
    for (int j = 0; j < geo.num_dcs; ++j) {
      row.push_back(Fmt(stats.counts[i][j]));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::cout << "\nIntra-DC edges: " << stats.intra_dc_edges
            << "  Inter-DC edges: " << stats.inter_dc_edges
            << "  Inter-DC fraction: " << Fmt(stats.InterDcFraction(), 3)
            << "\n";
  std::cout << "Paper observation: over 75% of edges are inter-DC.\n";
  return 0;
}
