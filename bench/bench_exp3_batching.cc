// Exp#3 (Table IV): optimization overhead of RLCut vs batch size
// (Twitter preset, PageRank, SR fixed at 10% as in the paper), plus the
// quality variance check and the straggler-mitigation ablation.

#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table_writer.h"
#include "rlcut/rlcut_partitioner.h"

int main(int argc, char** argv) {
  using namespace rlcut;
  using bench::MakeProblem;

  FlagParser flags;
  flags.DefineInt("scale", 2000, "dataset down-scale factor");
  flags.DefineInt("repeats", 3, "repetitions per configuration");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const uint64_t scale =
      flags.GetInt("scale") > 0
          ? static_cast<uint64_t>(flags.GetInt("scale"))
          : bench::DefaultScale(Dataset::kTwitter);
  const int repeats = static_cast<int>(flags.GetInt("repeats"));

  const Topology topology = MakeEc2Topology();
  auto problem = MakeProblem(Dataset::kTwitter, scale, topology,
                             Workload::PageRank());

  auto run = [&](int batch, bool straggler, uint64_t seed) {
    RLCutOptions opt;
    opt.budget = problem->ctx.budget;
    opt.max_steps = 3;
    opt.fixed_sample_rate = 0.10;  // paper fixes SR=10% for this study
    opt.batch_size = batch;
    opt.straggler_mitigation = straggler;
    opt.convergence_epsilon = 0;
    opt.seed = seed;
    return RunRLCut(problem->ctx, opt);
  };

  std::cout << "=== Table IV: overhead vs batch size (TW preset, SR=10%) "
               "===\n";
  TableWriter table({"BatchSize", "Overhead(s)", "Transfer(s)",
                     "TransferCV(%)"});
  for (int batch : {1, 2, 4, 8, 16, 32, 48}) {
    RunningStats overhead;
    RunningStats transfer;
    for (int rep = 0; rep < repeats; ++rep) {
      RLCutRunOutput out = run(batch, true, 1 + rep);
      overhead.Add(out.train.overhead_seconds);
      transfer.Add(out.state.CurrentObjective().transfer_seconds);
    }
    table.AddRow({Fmt(static_cast<int64_t>(batch)),
                  Fmt(overhead.mean(), 3), Fmt(transfer.mean(), 6),
                  Fmt(100 * transfer.cv(), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: overhead falls as the batch grows toward "
               "the core count while the optimized transfer time barely "
               "moves (variance ~1%).\n";

  std::cout << "\n=== Ablation: straggler mitigation (batch=48) ===\n";
  TableWriter ab({"StragglerMitigation", "Overhead(s)"});
  for (bool on : {true, false}) {
    RunningStats overhead;
    for (int rep = 0; rep < repeats; ++rep) {
      overhead.Add(run(48, on, 10 + rep).train.overhead_seconds);
    }
    ab.AddRow({on ? "on" : "off", Fmt(overhead.mean(), 3)});
  }
  ab.Print(std::cout);
  return 0;
}
