// Fig. 2: normalized WAN usage and replication factors of hybrid-cut
// (HashPL) vs balanced p-way vertex-cut (RandPG) over the five datasets,
// PageRank workload. The paper reports hybrid-cut cutting WAN usage by
// up to 87%.

#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/table_writer.h"

int main(int argc, char** argv) {
  using namespace rlcut;
  using bench::MakeProblem;

  FlagParser flags;
  flags.DefineInt("scale", 0, "dataset down-scale factor (0 = default)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  const Topology topology = MakeEc2Topology();
  std::cout << "=== Fig. 2: hybrid-cut (HashPL) vs vertex-cut (RandPG), "
               "PageRank ===\n";
  TableWriter table({"Graph", "WAN(vertex-cut)", "WAN(hybrid)",
                     "WAN-reduction", "lambda(vertex-cut)",
                     "lambda(hybrid)"});
  for (Dataset dataset : AllDatasets()) {
    const uint64_t scale = flags.GetInt("scale") > 0
                               ? static_cast<uint64_t>(flags.GetInt("scale"))
                               : bench::DefaultScale(dataset);
    auto problem =
        MakeProblem(dataset, scale, topology, Workload::PageRank());
    PartitionOutput vertex_cut =
        MakePartitionerByName("RandPG", {}).value()->RunOrDie(problem->ctx);
    PartitionOutput hybrid =
        MakePartitionerByName("HashPL", {}).value()->RunOrDie(problem->ctx);
    const double wan_vc = vertex_cut.state.WanBytesPerIteration();
    const double wan_hc = hybrid.state.WanBytesPerIteration();
    table.AddRow({DatasetName(dataset), Fmt(wan_vc / 1e6, 2) + "MB",
                  Fmt(wan_hc / 1e6, 2) + "MB",
                  Fmt(100 * (1 - wan_hc / wan_vc), 1) + "%",
                  Fmt(vertex_cut.state.ReplicationFactor(), 2),
                  Fmt(hybrid.state.ReplicationFactor(), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: hybrid-cut reduces WAN usage (up to 87%) and "
               "replication factor on every graph.\n";
  return 0;
}
