// Extended comparison: every partitioner in the registry (the paper's
// six, RLCut, and the extra published baselines) on one dataset and
// workload. Not a paper figure; positions the extras against the
// paper's methods on the same evaluation substrate. The row set tracks
// ListPartitioners(), so newly registered methods show up here for free.

#include <iostream>
#include <memory>

#include "baselines/extra_partitioners.h"
#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "partition/metrics.h"
#include "rlcut/rlcut_partitioner.h"

int main(int argc, char** argv) {
  using namespace rlcut;
  using bench::MakeProblem;

  FlagParser flags;
  flags.DefineString("graph", "LJ", "dataset preset");
  flags.DefineInt("scale", 2000, "dataset down-scale factor");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  Result<Dataset> dataset = ParseDataset(flags.GetString("graph"));
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }

  const Topology topology = MakeEc2Topology();
  auto problem = MakeProblem(*dataset,
                             static_cast<uint64_t>(flags.GetInt("scale")),
                             topology, Workload::PageRank());

  std::cout << "=== Extended comparison (" << DatasetName(*dataset)
            << " preset, PR, " << problem->graph.num_vertices()
            << " vertices) ===\n";
  TableWriter table({"Method", "Model", "Transfer(s)", "Cost/B", "lambda",
                     "WAN(MB/iter)", "Overhead(s)"});

  auto add_row = [&](const std::string& name, PartitionOutput out,
                     ComputeModel model) {
    const Objective obj = out.state.CurrentObjective();
    const char* model_name = model == ComputeModel::kHybridCut ? "hybrid"
                             : model == ComputeModel::kVertexCut
                                 ? "vertex"
                                 : "edge";
    table.AddRow({name, model_name, Fmt(obj.transfer_seconds, 6),
                  Fmt(obj.cost_dollars / problem->ctx.budget, 3),
                  Fmt(out.state.ReplicationFactor(), 2),
                  Fmt(out.state.WanBytesPerIteration() / 1e6, 3),
                  Fmt(out.overhead_seconds, 3)});
  };

  // Every registered partitioner, in registry order. RLCut is held back
  // so it can use the deterministic bench budget and land last.
  for (const PartitionerInfo& info : ListPartitioners()) {
    if (info.name == "RLCut") continue;
    auto partitioner = MakePartitionerByName(info.name, {}).value();
    add_row(info.name, partitioner->RunOrDie(problem->ctx),
            partitioner->model());
  }
  {
    RLCutOptions opt = bench::BenchRLCutOptionsDeterministic(
        problem->ctx.budget, problem->graph.num_vertices());
    RLCutRunOutput out = RunRLCut(problem->ctx, opt);
    add_row("RLCut",
            PartitionOutput(std::move(out.state),
                            out.train.overhead_seconds),
            ComputeModel::kHybridCut);
  }
  table.Print(std::cout);
  std::cout << "\nOnly the budget-aware optimizers (Geo-Cut, Annealing, "
               "RLCut) land under the budget; RLCut matches the best "
               "transfer time while spending the least of it.\n";
  return 0;
}
