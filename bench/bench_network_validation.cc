// Network-model validation: the paper's Eq. 1-3 closed-form transfer
// time assumes a congestion-free core where each DC's uplink/downlink
// are the only bottlenecks. This bench re-times the realized GAS traffic
// of each partitioning method with an event-driven max-min-fair flow
// simulation over the same links and reports the deviation, validating
// that the closed form is (within a fraction of a percent) what a
// fair-sharing transport would actually deliver.

#include <iostream>
#include <memory>

#include "baselines/extra_partitioners.h"
#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "engine/gas_engine.h"
#include "engine/vertex_program.h"
#include "rlcut/rlcut_partitioner.h"

int main(int argc, char** argv) {
  using namespace rlcut;
  using bench::MakeProblem;

  FlagParser flags;
  flags.DefineString("graph", "LJ", "dataset preset");
  flags.DefineInt("scale", 2000, "dataset down-scale factor");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  Result<Dataset> dataset = ParseDataset(flags.GetString("graph"));
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }

  const Topology topology = MakeEc2Topology();
  auto problem = MakeProblem(*dataset,
                             static_cast<uint64_t>(flags.GetInt("scale")),
                             topology, Workload::PageRank());

  std::cout << "=== Closed-form (Eq. 1-3) vs flow-level transfer time, "
            << DatasetName(*dataset) << " preset, PageRank ===\n";
  TableWriter table({"Method", "ClosedForm(s)", "FlowLevel(s)",
                     "Deviation(%)"});

  auto evaluate = [&](const std::string& name, PartitionState state) {
    auto p1 = MakePageRank(10);
    auto p2 = MakePageRank(10);
    GasEngine closed(&state, {TimingModel::kClosedForm});
    GasEngine flow(&state, {TimingModel::kFlowLevel});
    const double t_closed = closed.Run(p1.get()).total_transfer_seconds;
    const double t_flow = flow.Run(p2.get()).total_transfer_seconds;
    table.AddRow({name, Fmt(t_closed, 7), Fmt(t_flow, 7),
                  Fmt(100 * (t_flow - t_closed) /
                          std::max(1e-15, t_closed),
                      4)});
  };

  for (const char* name : {"RandPG", "HashPL", "Ginger", "Spinner"}) {
    evaluate(name,
             std::move(MakePartitionerByName(name)->RunOrDie(problem->ctx).state));
  }
  {
    RLCutOptions opt = bench::BenchRLCutOptionsDeterministic(
        problem->ctx.budget, problem->graph.num_vertices());
    evaluate("RLCut", std::move(RunRLCut(problem->ctx, opt).state));
  }
  table.Print(std::cout);
  std::cout << "\nDeviations stay below ~0.1%: under the paper's own "
               "network assumptions, the closed form it optimizes is "
               "what fair-share transport delivers.\n";
  return 0;
}
