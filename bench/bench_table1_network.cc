// Table I: uplink/downlink bandwidths and upload prices of the EC2
// regions, plus the derived Low/Medium/High heterogeneity profiles used
// by the Fig. 3 motivation study.

#include <iostream>

#include "cloud/topology.h"
#include "common/stats.h"
#include "common/table_writer.h"

int main() {
  using namespace rlcut;

  std::cout << "=== Table I: EC2 region network profile "
               "(measured: US-East, AP-Singapore, AP-Sydney; others "
               "extrapolated) ===\n";
  TableWriter table(
      {"Region", "Uplink(GB/s)", "Downlink(GB/s)", "Price($/GB)"});
  Topology medium = MakeEc2Topology();
  for (const DataCenter& dc : medium.dcs()) {
    table.AddRow({dc.name, Fmt(dc.uplink_gbps, 2), Fmt(dc.downlink_gbps, 2),
                  Fmt(dc.upload_price, 2)});
  }
  table.Print(std::cout);

  std::cout << "\n=== Heterogeneity profiles (coefficient of variation of "
               "uplink bandwidth) ===\n";
  TableWriter het({"Profile", "Uplink-CV", "Downlink-CV"});
  for (auto [name, level] :
       {std::pair{"Low", Heterogeneity::kLow},
        std::pair{"Medium", Heterogeneity::kMedium},
        std::pair{"High", Heterogeneity::kHigh}}) {
    Topology topo = MakeEc2Topology(level);
    RunningStats up;
    RunningStats down;
    for (const DataCenter& dc : topo.dcs()) {
      up.Add(dc.uplink_gbps);
      down.Add(dc.downlink_gbps);
    }
    het.AddRow({name, Fmt(up.cv(), 3), Fmt(down.cv(), 3)});
  }
  het.Print(std::cout);
  std::cout << "\nPaper observation: downlinks are several times faster "
               "than uplinks and profiles differ across regions.\n";
  return 0;
}
