#include "bench/bench_common.h"

#include <algorithm>

namespace rlcut {
namespace bench {

double CentralizedMoveCost(const Graph& graph,
                           const std::vector<DcId>& locations,
                           const std::vector<double>& input_sizes,
                           const Topology& topology) {
  const DcId hub = topology.CheapestUploadDc();
  double cost = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (locations[v] != hub) {
      cost += topology.UploadCost(locations[v], input_sizes[v]);
    }
  }
  return cost;
}

std::unique_ptr<Problem> MakeProblem(Graph graph, const Topology& topology,
                                     const Workload& workload,
                                     double budget_fraction, uint64_t seed) {
  auto p = std::make_unique<Problem>();
  p->graph = std::move(graph);
  p->topology = topology;
  GeoLocatorOptions geo;
  geo.num_dcs = topology.num_dcs();
  geo.seed = seed;
  p->locations = AssignGeoLocations(p->graph, geo);
  p->input_sizes = AssignInputSizes(p->graph);
  p->centralized_move_cost = CentralizedMoveCost(
      p->graph, p->locations, p->input_sizes, p->topology);

  p->ctx.graph = &p->graph;
  p->ctx.topology = &p->topology;
  p->ctx.locations = &p->locations;
  p->ctx.input_sizes = &p->input_sizes;
  p->ctx.workload = workload;
  p->ctx.theta = PartitionState::AutoTheta(p->graph);
  p->ctx.budget = budget_fraction * p->centralized_move_cost;
  p->ctx.seed = seed;
  return p;
}

std::unique_ptr<Problem> MakeProblem(Dataset dataset, uint64_t scale,
                                     const Topology& topology,
                                     const Workload& workload,
                                     double budget_fraction, uint64_t seed) {
  return MakeProblem(LoadDataset(dataset, scale, seed), topology, workload,
                     budget_fraction, seed);
}

RLCutOptions BenchRLCutOptions(double budget, double ginger_overhead,
                               double t_opt_floor, double multiplier) {
  RLCutOptions opt;
  opt.budget = budget;
  opt.t_opt_seconds =
      std::max(t_opt_floor, multiplier * ginger_overhead);
  opt.max_steps = 10;
  opt.batch_size = 48;
  return opt;
}

RLCutOptions BenchRLCutOptionsDeterministic(double budget,
                                            uint64_t num_eligible,
                                            double visits_per_vertex) {
  RLCutOptions opt;
  opt.budget = budget;
  opt.agent_visit_budget = static_cast<int64_t>(
      visits_per_vertex * static_cast<double>(num_eligible));
  opt.max_steps = 10;
  opt.batch_size = 48;
  return opt;
}

uint64_t DefaultScale(Dataset dataset) {
  switch (dataset) {
    case Dataset::kLiveJournal:
    case Dataset::kOrkut:
      return 2000;
    case Dataset::kUk2005:
    case Dataset::kIt2004:
    case Dataset::kTwitter:
      return 8000;
  }
  return 4000;
}

}  // namespace bench
}  // namespace rlcut
