// Exp#2 (Fig. 12): sensitivity to the budget constraint. Budget varies
// over {1%, 10%, 40%, 50%} of the centralized-move cost; Orkut preset,
// PageRank; performance results normalized to Ginger.

#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "rlcut/rlcut_partitioner.h"

int main(int argc, char** argv) {
  using namespace rlcut;
  using bench::MakeProblem;

  FlagParser flags;
  flags.DefineInt("scale", 2000, "dataset down-scale factor");
  flags.DefineDouble("t_opt", 0.5, "RLCut time budget, seconds");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  const Topology topology = MakeEc2Topology();

  std::cout << "=== Fig. 12: budget sensitivity (OT preset, PageRank) "
               "===\n";
  TableWriter table({"Budget(%)", "T(Geo-Cut)/T(Ginger)",
                     "T(RLCut)/T(Ginger)", "C(Geo-Cut)/B", "C(Ginger)/B",
                     "C(RLCut)/B"});
  for (double fraction : {0.01, 0.10, 0.40, 0.50}) {
    auto problem = MakeProblem(Dataset::kOrkut,
                               static_cast<uint64_t>(flags.GetInt("scale")),
                               topology, Workload::PageRank(), fraction);
    PartitionOutput ginger =
        MakePartitionerByName("Ginger", {}).value()->RunOrDie(problem->ctx);
    PartitionOutput geocut =
        MakePartitionerByName("Geo-Cut", {}).value()->RunOrDie(problem->ctx);
    RLCutOptions opt = bench::BenchRLCutOptions(
        problem->ctx.budget, ginger.overhead_seconds, flags.GetDouble("t_opt"));
    RLCutRunOutput ours = RunRLCut(problem->ctx, opt);

    const double t_ginger =
        ginger.state.CurrentObjective().transfer_seconds;
    const double budget = problem->ctx.budget;
    table.AddRow(
        {Fmt(100 * fraction, 0),
         Fmt(geocut.state.CurrentObjective().transfer_seconds / t_ginger, 3),
         Fmt(ours.state.CurrentObjective().transfer_seconds / t_ginger, 3),
         Fmt(geocut.state.CurrentObjective().cost_dollars / budget, 3),
         Fmt(ginger.state.CurrentObjective().cost_dollars / budget, 3),
         Fmt(ours.state.CurrentObjective().cost_dollars / budget, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: RLCut beats both comparisons at every "
               "budget, improves as the budget loosens, and stays within "
               "budget (cost/B <= 1) while Ginger ignores it.\n";
  return 0;
}
