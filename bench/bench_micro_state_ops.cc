// Micro-benchmarks (google-benchmark) for the hot operations that
// dominate RLCut's training overhead: what-if evaluation, master moves,
// streaming edge placement, full rebuilds, and a GAS super-step.

#include <benchmark/benchmark.h>

#include "cloud/flow_simulator.h"
#include "cloud/topology.h"
#include "common/random.h"
#include "engine/gas_engine.h"
#include "engine/vertex_program.h"
#include "graph/generators.h"
#include "partition/partition_state.h"

namespace rlcut {
namespace {

struct MicroFixture {
  explicit MicroFixture(VertexId n, uint64_t m, ComputeModel model)
      : topology(MakeEc2Topology()) {
    PowerLawOptions opt;
    opt.num_vertices = n;
    opt.num_edges = m;
    graph = GeneratePowerLaw(opt);
    Rng rng(1);
    locations.resize(graph.num_vertices());
    for (auto& l : locations) {
      l = static_cast<DcId>(rng.UniformInt(topology.num_dcs()));
    }
    sizes.assign(graph.num_vertices(), 1e6);
    PartitionConfig config;
    config.model = model;
    config.theta = PartitionState::AutoTheta(graph);
    state = std::make_unique<PartitionState>(&graph, &topology, &locations,
                                             &sizes, config);
    if (model != ComputeModel::kVertexCut) {
      state->ResetDerived(locations);
    }
  }

  Graph graph;
  Topology topology;
  std::vector<DcId> locations;
  std::vector<double> sizes;
  std::unique_ptr<PartitionState> state;
};

void BM_EvaluateMove(benchmark::State& bench_state) {
  MicroFixture fix(1 << 12, 1 << 15, ComputeModel::kHybridCut);
  EvalScratch scratch;
  Rng rng(2);
  for (auto _ : bench_state) {
    const VertexId v =
        static_cast<VertexId>(rng.UniformInt(fix.graph.num_vertices()));
    const DcId to = static_cast<DcId>(rng.UniformInt(8));
    benchmark::DoNotOptimize(fix.state->EvaluateMove(v, to, &scratch));
  }
}
BENCHMARK(BM_EvaluateMove);

void BM_EvaluateMoveAll(benchmark::State& bench_state) {
  MicroFixture fix(1 << 12, 1 << 15, ComputeModel::kHybridCut);
  EvalScratch scratch;
  Objective evals[kMaxDataCenters];
  Rng rng(2);
  for (auto _ : bench_state) {
    const VertexId v =
        static_cast<VertexId>(rng.UniformInt(fix.graph.num_vertices()));
    fix.state->EvaluateMoveAll(v, &scratch, evals);
    benchmark::DoNotOptimize(evals);
  }
}
BENCHMARK(BM_EvaluateMoveAll);

// Reference for the speedup claim: the same all-destination scoring
// done the old way, one EvaluateMove per DC.
void BM_EvaluateMoveLoopAllDcs(benchmark::State& bench_state) {
  MicroFixture fix(1 << 12, 1 << 15, ComputeModel::kHybridCut);
  EvalScratch scratch;
  Rng rng(2);
  for (auto _ : bench_state) {
    const VertexId v =
        static_cast<VertexId>(rng.UniformInt(fix.graph.num_vertices()));
    for (DcId to = 0; to < 8; ++to) {
      benchmark::DoNotOptimize(fix.state->EvaluateMove(v, to, &scratch));
    }
  }
}
BENCHMARK(BM_EvaluateMoveLoopAllDcs);

void BM_EvaluatePlaceEdgeAll(benchmark::State& bench_state) {
  MicroFixture fix(1 << 12, 1 << 15, ComputeModel::kVertexCut);
  Rng rng(4);
  for (EdgeId e = 0; e < fix.graph.num_edges(); ++e) {
    fix.state->PlaceEdge(e, static_cast<DcId>(rng.UniformInt(8)));
  }
  EvalScratch scratch;
  Objective evals[kMaxDataCenters];
  for (auto _ : bench_state) {
    const EdgeId e = rng.UniformInt(fix.graph.num_edges());
    fix.state->EvaluatePlaceEdgeAll(e, &scratch, evals);
    benchmark::DoNotOptimize(evals);
  }
}
BENCHMARK(BM_EvaluatePlaceEdgeAll);

void BM_MoveMaster(benchmark::State& bench_state) {
  MicroFixture fix(1 << 12, 1 << 15, ComputeModel::kHybridCut);
  Rng rng(3);
  for (auto _ : bench_state) {
    const VertexId v =
        static_cast<VertexId>(rng.UniformInt(fix.graph.num_vertices()));
    const DcId to = static_cast<DcId>(rng.UniformInt(8));
    fix.state->MoveMaster(v, to);
  }
}
BENCHMARK(BM_MoveMaster);

void BM_PlaceEdge(benchmark::State& bench_state) {
  MicroFixture fix(1 << 12, 1 << 15, ComputeModel::kVertexCut);
  Rng rng(4);
  for (auto _ : bench_state) {
    const EdgeId e = rng.UniformInt(fix.graph.num_edges());
    const DcId to = static_cast<DcId>(rng.UniformInt(8));
    fix.state->PlaceEdge(e, to);
  }
}
BENCHMARK(BM_PlaceEdge);

void BM_ResetDerived(benchmark::State& bench_state) {
  MicroFixture fix(1 << 12, 1 << 15, ComputeModel::kHybridCut);
  for (auto _ : bench_state) {
    fix.state->ResetDerived(fix.locations);
  }
}
BENCHMARK(BM_ResetDerived);

void BM_CurrentObjective(benchmark::State& bench_state) {
  MicroFixture fix(1 << 12, 1 << 15, ComputeModel::kHybridCut);
  for (auto _ : bench_state) {
    benchmark::DoNotOptimize(fix.state->CurrentObjective());
  }
}
BENCHMARK(BM_CurrentObjective);

void BM_PageRankSuperStep(benchmark::State& bench_state) {
  MicroFixture fix(1 << 12, 1 << 15, ComputeModel::kHybridCut);
  GasEngine engine(fix.state.get());
  for (auto _ : bench_state) {
    auto program = MakePageRank(1);
    benchmark::DoNotOptimize(engine.Run(program.get()));
  }
}
BENCHMARK(BM_PageRankSuperStep);

void BM_FlowSimulatorStage(benchmark::State& bench_state) {
  Topology topo = MakeEc2Topology();
  FlowSimulator sim(&topo);
  Rng rng(5);
  std::vector<FlowTransfer> flows;
  for (DcId s = 0; s < 8; ++s) {
    for (DcId d = 0; d < 8; ++d) {
      if (s != d) flows.push_back({s, d, rng.UniformDouble() * 1e8});
    }
  }
  for (auto _ : bench_state) {
    benchmark::DoNotOptimize(sim.SimulateMakespan(flows));
  }
}
BENCHMARK(BM_FlowSimulatorStage);

void BM_GingerPartition(benchmark::State& bench_state) {
  MicroFixture fix(1 << 12, 1 << 15, ComputeModel::kHybridCut);
  std::vector<DcId> masters(fix.graph.num_vertices());
  for (auto _ : bench_state) {
    // Greedy pass cost proxy: one full streaming sweep over vertices
    // counting in-neighbor placements (the Ginger inner loop).
    std::vector<double> load(8, 0);
    for (VertexId v = 0; v < fix.graph.num_vertices(); ++v) {
      double best = -1e300;
      DcId pick = 0;
      double counts[8] = {0};
      for (VertexId u : fix.graph.InNeighbors(v)) {
        counts[masters[u] % 8] += 1;
      }
      for (DcId r = 0; r < 8; ++r) {
        const double score = counts[r] - 0.5 * load[r];
        if (score > best) {
          best = score;
          pick = r;
        }
      }
      masters[v] = pick;
      load[pick] += 1;
    }
    benchmark::DoNotOptimize(masters.data());
  }
}
BENCHMARK(BM_GingerPartition);

}  // namespace
}  // namespace rlcut

BENCHMARK_MAIN();
