#!/usr/bin/env bash
# Two-process replica-sync demo and regression test
# (docs/distributed.md). Phase 1 trains against a live rlcut_replica
# worker and checks the two processes agree on the final plan
# fingerprint. Phase 2 SIGKILLs the worker mid-run and restarts it
# empty on the same port: the client must reconnect, detect the version
# gap, heal via snapshot resync, and still end synced.
#
#   tools/net_demo.sh <rlcut_replica binary> <rlcut_tool binary>
set -u

REPLICA_BIN=${1:?usage: net_demo.sh <rlcut_replica> <rlcut_tool>}
TOOL_BIN=${2:?usage: net_demo.sh <rlcut_replica> <rlcut_tool>}

workdir=$(mktemp -d "${TMPDIR:-/tmp}/rlcut_net_demo.XXXXXX")
replica_pid=""
cleanup() {
  if [[ -n "$replica_pid" ]]; then
    kill -TERM "$replica_pid" 2>/dev/null
    wait "$replica_pid" 2>/dev/null
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "---- replica log ----" >&2
  cat "$workdir"/replica*.log >&2 2>/dev/null
  echo "---- tool log ----" >&2
  cat "$workdir"/tool*.log >&2 2>/dev/null
  exit 1
}

# Starts a replica worker and waits for its listening line.
# start_replica <log file> <port (0 = ephemeral)>; sets replica_pid and
# replica_port.
start_replica() {
  local log=$1 port=$2
  "$REPLICA_BIN" --port="$port" >"$log" 2>&1 &
  replica_pid=$!
  replica_port=""
  for _ in $(seq 1 100); do
    replica_port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
                   "$log" | head -n1)
    [[ -n "$replica_port" ]] && return 0
    kill -0 "$replica_pid" 2>/dev/null || fail "replica died on startup"
    sleep 0.1
  done
  fail "replica never printed its port"
}

# ---- Phase 1: clean run; fingerprints must agree ----------------------
start_replica "$workdir/replica1.log" 0

"$TOOL_BIN" --gen_vertices=2048 --gen_edges=8192 --dcs=4 --method=RLCut \
    --t_opt=0.5 --replica_endpoint=127.0.0.1:"$replica_port" \
    >"$workdir/tool1.log" 2>&1 \
  || fail "phase 1: rlcut_tool exited non-zero"
grep -q "Replica 127.0.0.1:$replica_port: synced" "$workdir/tool1.log" \
  || fail "phase 1: tool did not report a synced replica"
tool_fp=$(sed -n 's/.*fingerprint \([0-9a-f]\{16\}\).*/\1/p' \
          "$workdir/tool1.log" | head -n1)

kill -TERM "$replica_pid" && wait "$replica_pid" 2>/dev/null
replica_pid=""
replica_fp=$(sed -n 's/.*replica final: v[0-9]* fingerprint \([0-9a-f]\{16\}\).*/\1/p' \
             "$workdir/replica1.log" | head -n1)
[[ -n "$tool_fp" && "$tool_fp" == "$replica_fp" ]] \
  || fail "phase 1: fingerprint mismatch (tool=$tool_fp replica=$replica_fp)"
echo "phase 1 ok: both processes at fingerprint $tool_fp"

# ---- Phase 2: kill the worker mid-run, restart empty, must resync ----
start_replica "$workdir/replica2.log" 0
fixed_port=$replica_port

"$TOOL_BIN" --gen_vertices=2048 --gen_edges=8192 --dcs=4 --method=RLCut \
    --t_opt=6 --replica_endpoint=127.0.0.1:"$fixed_port" \
    >"$workdir/tool2.log" 2>&1 &
tool_pid=$!

sleep 2
kill -9 "$replica_pid" 2>/dev/null
wait "$replica_pid" 2>/dev/null
# Restart empty on the same port: the reconnecting client sees a
# version gap and must heal with a full snapshot.
start_replica "$workdir/replica3.log" "$fixed_port"

wait "$tool_pid" || fail "phase 2: rlcut_tool exited non-zero"
grep -q "Replica 127.0.0.1:$fixed_port: synced" "$workdir/tool2.log" \
  || fail "phase 2: tool did not report a synced replica"
heals=$(sed -n 's/.*synced.* \([0-9]*\) resyncs, \([0-9]*\) reconnects.*/\1 \2/p' \
        "$workdir/tool2.log" | head -n1)
read -r resyncs reconnects <<<"$heals"
[[ "${resyncs:-0}" -ge 1 || "${reconnects:-0}" -ge 1 ]] \
  || fail "phase 2: no resync/reconnect recorded (got '$heals')"
echo "phase 2 ok: survived kill/restart ($resyncs resyncs," \
     "$reconnects reconnects)"
