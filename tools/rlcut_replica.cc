// rlcut_replica: plan-replica worker daemon (docs/distributed.md).
//
// The far side of the process-split replica link: owns a ReplicaServer
// (a versioned PlanReplica behind the framed-message protocol) and
// serves sequential connections from a trainer-side ReplicaClient —
// rlcut_tool --replica_endpoint or rlcut_serve --replica_endpoint.
//
//   rlcut_replica --port=7070
//   rlcut_replica --port=0        # ephemeral; the chosen port is printed
//
// A client that reconnects after this process restarts finds an empty
// replica, gets Nacked on its first delta, and heals by shipping a full
// snapshot — kill/restart mid-run is a supported, tested path. SIGINT
// and SIGTERM shut down cleanly: the current connection drains and the
// final replica version + fingerprint are printed (the operator compares
// them against the trainer's summary line).

#include <csignal>
#include <cstdio>
#include <atomic>
#include <memory>
#include <string>

#include "common/flags.h"
#include "net/replica_service.h"
#include "net/transport.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  rlcut::FlagParser flags;
  flags.DefineInt("port", 7070,
                  "TCP port to listen on (127.0.0.1); 0 picks an "
                  "ephemeral port and prints it");
  flags.DefineInt("idle_timeout_ms", 1000,
                  "per-recv idle wait before re-checking for shutdown");
  flags.DefineInt("max_connections", 0,
                  "exit after serving N connections (0 = run until "
                  "SIGINT/SIGTERM; used by tests)");
  flags.DefineBool("quiet", false, "suppress per-connection lines");
  if (rlcut::Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bool quiet = flags.GetBool("quiet");

  rlcut::Result<std::unique_ptr<rlcut::net::TcpListener>> listener =
      rlcut::net::TcpListener::Listen(
          static_cast<int>(flags.GetInt("port")));
  if (!listener.ok()) {
    std::fprintf(stderr, "listen: %s\n",
                 listener.status().ToString().c_str());
    return 1;
  }
  std::printf("rlcut_replica listening on 127.0.0.1:%d\n",
              (*listener)->port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  rlcut::net::ReplicaServerOptions server_options;
  server_options.idle_timeout_ms =
      static_cast<int>(flags.GetInt("idle_timeout_ms"));
  rlcut::net::ReplicaServer server(server_options);

  const int64_t max_connections = flags.GetInt("max_connections");
  uint64_t served = 0;
  while (!g_stop.load(std::memory_order_relaxed)) {
    // Short accept timeout so shutdown signals are honored promptly.
    rlcut::Result<std::unique_ptr<rlcut::net::Transport>> accepted =
        (*listener)->Accept(/*timeout_ms=*/200);
    if (!accepted.ok()) {
      if (accepted.status().message().find("timed out") !=
          std::string::npos) {
        continue;
      }
      std::fprintf(stderr, "accept: %s\n",
                   accepted.status().ToString().c_str());
      break;
    }
    const rlcut::Status conn = server.ServeConnection(accepted->get(),
                                                      &g_stop);
    ++served;
    if (!quiet) {
      std::printf("connection %llu: %s (replica now v%llu)\n",
                  static_cast<unsigned long long>(served),
                  conn.ok() ? "clean EOF" : conn.ToString().c_str(),
                  static_cast<unsigned long long>(server.version()));
      std::fflush(stdout);
    }
    if (max_connections > 0 &&
        served >= static_cast<uint64_t>(max_connections)) {
      break;
    }
  }
  (*listener)->Close();

  const rlcut::net::ReplicaServerStats stats = server.stats();
  std::printf(
      "replica final: v%llu fingerprint %016llx (%llu connections, "
      "%llu frames, %llu deltas, %llu snapshots, %llu nacks, "
      "%llu pings)\n",
      static_cast<unsigned long long>(server.version()),
      static_cast<unsigned long long>(server.fingerprint()),
      static_cast<unsigned long long>(stats.connections),
      static_cast<unsigned long long>(stats.frames),
      static_cast<unsigned long long>(stats.deltas_applied),
      static_cast<unsigned long long>(stats.snapshots_installed),
      static_cast<unsigned long long>(stats.nacks),
      static_cast<unsigned long long>(stats.pings));
  return 0;
}
