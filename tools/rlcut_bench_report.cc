// Perf-regression harness: times the hot PartitionState operations and
// one short training run on the standard power-law micro fixture
// (2^12 vertices, 2^15 edges, EC2 8-DC topology — the same instance as
// bench_micro_state_ops) and writes a machine-readable BENCH_micro.json
// that CI archives per commit. Unlike the google-benchmark binary this
// needs no framework, prints one JSON document, and can gate the
// batched-evaluation speedup:
//
//   rlcut_bench_report --out=BENCH_micro.json --commit=$(git rev-parse HEAD)
//   rlcut_bench_report --fast --check_speedup=2.0   # CI smoke gate
//
// `--check_speedup=R` exits non-zero if EvaluateMoveAll is not at least
// R times faster than the equivalent loop of single EvaluateMove calls.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include <algorithm>

#include "cloud/topology.h"
#include "common/flags.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "graph/stream.h"
#include "graph/temporal.h"
#include "partition/partition_state.h"
#include "rlcut/rlcut_partitioner.h"
#include "rlcut/session.h"

namespace rlcut {
namespace {

constexpr VertexId kVertices = 1 << 12;
constexpr uint64_t kEdges = 1 << 15;

struct Fixture {
  explicit Fixture(ComputeModel model) : topology(MakeEc2Topology()) {
    PowerLawOptions opt;
    opt.num_vertices = kVertices;
    opt.num_edges = kEdges;
    graph = GeneratePowerLaw(opt);
    Rng rng(1);
    locations.resize(graph.num_vertices());
    for (auto& l : locations) {
      l = static_cast<DcId>(rng.UniformInt(topology.num_dcs()));
    }
    sizes.assign(graph.num_vertices(), 1e6);
    PartitionConfig config;
    config.model = model;
    config.theta = PartitionState::AutoTheta(graph);
    state = std::make_unique<PartitionState>(&graph, &topology, &locations,
                                             &sizes, config);
    if (model == ComputeModel::kVertexCut) {
      Rng place_rng(4);
      for (EdgeId e = 0; e < graph.num_edges(); ++e) {
        state->PlaceEdge(
            e, static_cast<DcId>(place_rng.UniformInt(topology.num_dcs())));
      }
    } else {
      state->ResetDerived(locations);
    }
  }

  Graph graph;
  Topology topology;
  std::vector<DcId> locations;
  std::vector<double> sizes;
  std::unique_ptr<PartitionState> state;
};

struct OpResult {
  std::string op;
  double ns_per_op = 0;
  // Documented estimate of the scratch/state bytes an op touches, not a
  // heap profile: affected-set records plus the per-DC aggregate arrays
  // (see EmitJson for the formulas).
  double bytes_per_op = 0;
};

/// Times `body` (which performs `ops_per_call` logical operations per
/// invocation) over `reps` invocations after a 1/16 warmup.
double TimeNsPerOp(int64_t reps, int64_t ops_per_call,
                   const std::function<void()>& body) {
  for (int64_t i = 0; i < reps / 16 + 1; ++i) body();
  WallTimer timer;
  for (int64_t i = 0; i < reps; ++i) body();
  return timer.ElapsedSeconds() * 1e9 /
         static_cast<double>(reps * ops_per_call);
}

/// Streaming-session fixture: drives an RLCutSession over a diurnal
/// temporal stream in micro-batches (the rlcut_serve loop without the
/// daemon scaffolding) and reports sustained ingest throughput plus the
/// p99 micro-batch apply latency.
struct ServeResult {
  double edges_per_sec = 0;
  double p99_apply_ms = 0;
};

ServeResult RunServeFixture(bool fast) {
  TemporalStreamOptions stream;
  stream.num_vertices = fast ? kVertices / 4 : kVertices;
  stream.num_edges = fast ? kEdges / 4 : kEdges;
  stream.horizon_seconds = 24 * 3600;
  stream.seed = 7;
  const TemporalGraph temporal = GenerateDiurnalStream(stream);
  const uint64_t base_count = stream.num_edges / 5;
  const Graph base = temporal.Prefix(base_count);
  const Topology topology = MakeEc2Topology();
  GeoLocatorOptions geo;
  geo.num_dcs = topology.num_dcs();
  const std::vector<DcId> locations = AssignGeoLocations(base, geo);
  const std::vector<double> sizes = AssignInputSizes(base);

  PartitionerContext ctx;
  ctx.graph = &base;
  ctx.topology = &topology;
  ctx.locations = &locations;
  ctx.input_sizes = &sizes;
  ctx.theta = PartitionState::AutoTheta(base);
  ctx.seed = 7;
  RLCutSessionOptions options;
  options.initial.max_steps = 2;
  options.initial.seed = 7;
  options.incremental = options.initial;
  auto session = RLCutSession::Open(ctx, options).value();

  MigrationBudget budget;
  budget.max_vertices = stream.num_vertices / 16;
  (void)session->MaybeReoptimize(budget).value();
  (void)session->PublishPlan().value();

  const int num_batches = fast ? 12 : 24;
  StreamBuffer buffer;
  const std::vector<TimedEdge>& all = temporal.edges();
  for (uint64_t i = base_count; i < all.size(); ++i) {
    buffer.Push(StreamEvent{all[i], i});
  }
  const SimTime start = all[base_count].time;
  const SimTime end = all.back().time + SimTime(1);

  uint64_t ingested = 0;
  double apply_seconds = 0;
  std::vector<double> latencies_ms;
  for (int b = 1; b <= num_batches; ++b) {
    const SimTime watermark = SimTime::Micros(
        start.micros() + (end.micros() - start.micros()) * b / num_batches);
    const MicroBatch batch = buffer.Cut(watermark);
    WallTimer timer;
    const ApplyResult applied = session->ApplyDelta(batch).value();
    const double elapsed = timer.ElapsedSeconds();
    apply_seconds += elapsed;
    latencies_ms.push_back(elapsed * 1e3);
    ingested += applied.edges_applied;
    if (b % 4 == 0) {
      (void)session->MaybeReoptimize(budget).value();
      (void)session->PublishPlan().value();
    }
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  ServeResult result;
  result.edges_per_sec = apply_seconds > 0
                             ? static_cast<double>(ingested) / apply_seconds
                             : 0;
  result.p99_apply_ms =
      latencies_ms[static_cast<size_t>(0.99 * (latencies_ms.size() - 1))];
  return result;
}

void EmitJson(std::FILE* f, const std::vector<OpResult>& results,
              const std::string& commit, double trainer_steps_per_sec,
              double speedup, const ServeResult& serve) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"commit\": \"%s\",\n", commit.c_str());
  std::fprintf(f, "  \"fixture\": {\"vertices\": %llu, \"edges\": %llu, "
                  "\"dcs\": 8, \"graph\": \"power_law\", "
                  "\"topology\": \"ec2\"},\n",
               static_cast<unsigned long long>(kVertices),
               static_cast<unsigned long long>(kEdges));
  std::fprintf(f, "  \"evaluate_move_all_speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"trainer_steps_per_sec\": %.3f,\n",
               trainer_steps_per_sec);
  std::fprintf(f, "  \"serve_edges_per_sec\": %.1f,\n",
               serve.edges_per_sec);
  std::fprintf(f, "  \"serve_p99_apply_ms\": %.3f,\n", serve.p99_apply_ms);
  std::fprintf(f, "  \"ops\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"ns_per_op\": %.2f, "
                 "\"bytes_per_op\": %.0f}%s\n",
                 results[i].op.c_str(), results[i].ns_per_op,
                 results[i].bytes_per_op, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

}  // namespace
}  // namespace rlcut

int main(int argc, char** argv) {
  using namespace rlcut;

  FlagParser flags;
  flags.DefineString("out", "BENCH_micro.json", "output JSON path");
  flags.DefineString("commit", "unknown", "commit id stamped into the JSON");
  flags.DefineBool("fast", false, "reduced reps (CI smoke)");
  flags.DefineDouble("check_speedup", 0,
                     "fail unless EvaluateMoveAll beats the equivalent "
                     "EvaluateMove loop by this factor (0 = off)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bool fast = flags.GetBool("fast");
  const int64_t reps = fast ? 40000 : 400000;

  Fixture hybrid(ComputeModel::kHybridCut);
  Fixture vertex_cut(ComputeModel::kVertexCut);
  const int num_dcs = hybrid.topology.num_dcs();
  const double avg_affected =
      1.0 + 2.0 * static_cast<double>(kEdges) / kVertices;
  // Scratch traffic estimate: affected-set records (24 B each) plus the
  // 4 (single) or 8 (batched: base + working) per-DC double arrays.
  const double eval_bytes = avg_affected * 24 + 4.0 * num_dcs * 8;
  const double eval_all_bytes = avg_affected * 24 + 8.0 * num_dcs * 8;

  std::vector<OpResult> results;
  EvalScratch scratch;
  Objective evals[kMaxDataCenters];
  Rng rng(2);

  results.push_back(
      {"evaluate_move",
       TimeNsPerOp(reps, 1,
                   [&] {
                     const VertexId v = static_cast<VertexId>(
                         rng.UniformInt(hybrid.graph.num_vertices()));
                     const DcId to =
                         static_cast<DcId>(rng.UniformInt(num_dcs));
                     volatile double sink =
                         hybrid.state->EvaluateMove(v, to, &scratch)
                             .transfer_seconds;
                     (void)sink;
                   }),
       eval_bytes});

  results.push_back(
      {"evaluate_move_all",
       TimeNsPerOp(reps, 1,
                   [&] {
                     const VertexId v = static_cast<VertexId>(
                         rng.UniformInt(hybrid.graph.num_vertices()));
                     hybrid.state->EvaluateMoveAll(v, &scratch, evals);
                     volatile double sink = evals[0].transfer_seconds;
                     (void)sink;
                   }),
       eval_all_bytes});

  results.push_back(
      {"evaluate_move_loop",
       TimeNsPerOp(reps / 4, 1,
                   [&] {
                     const VertexId v = static_cast<VertexId>(
                         rng.UniformInt(hybrid.graph.num_vertices()));
                     double acc = 0;
                     for (DcId to = 0; to < num_dcs; ++to) {
                       acc += hybrid.state->EvaluateMove(v, to, &scratch)
                                  .transfer_seconds;
                     }
                     volatile double sink = acc;
                     (void)sink;
                   }),
       num_dcs * eval_bytes});

  results.push_back(
      {"evaluate_place_edge_all",
       TimeNsPerOp(reps, 1,
                   [&] {
                     const EdgeId e =
                         rng.UniformInt(vertex_cut.graph.num_edges());
                     vertex_cut.state->EvaluatePlaceEdgeAll(e, &scratch,
                                                            evals);
                     volatile double sink = evals[0].transfer_seconds;
                     (void)sink;
                   }),
       eval_all_bytes});

  results.push_back(
      {"move_master",
       TimeNsPerOp(reps, 1,
                   [&] {
                     const VertexId v = static_cast<VertexId>(
                         rng.UniformInt(hybrid.graph.num_vertices()));
                     hybrid.state->MoveMaster(
                         v, static_cast<DcId>(rng.UniformInt(num_dcs)));
                   }),
       eval_bytes});

  results.push_back(
      {"place_edge",
       TimeNsPerOp(reps, 1,
                   [&] {
                     const EdgeId e =
                         rng.UniformInt(vertex_cut.graph.num_edges());
                     vertex_cut.state->PlaceEdge(
                         e, static_cast<DcId>(rng.UniformInt(num_dcs)));
                   }),
       eval_bytes});

  results.push_back(
      {"current_objective",
       TimeNsPerOp(reps, 1,
                   [&] {
                     volatile double sink =
                         hybrid.state->CurrentObjective().transfer_seconds;
                     (void)sink;
                   }),
       4.0 * num_dcs * 8});

  // Short end-to-end training run (Fig. 8 style): steps/sec over the
  // same instance through the full batched-scoring trainer path.
  PartitionerContext ctx;
  ctx.graph = &hybrid.graph;
  ctx.topology = &hybrid.topology;
  ctx.locations = &hybrid.locations;
  ctx.input_sizes = &hybrid.sizes;
  ctx.seed = 7;
  RLCutOptions train_opt;
  train_opt.max_steps = fast ? 2 : 4;
  train_opt.fixed_sample_rate = 0.25;
  train_opt.convergence_epsilon = 0;
  const RLCutRunOutput out = RunRLCut(ctx, train_opt);
  const double trainer_steps_per_sec =
      out.train.overhead_seconds > 0
          ? static_cast<double>(out.train.steps.size()) /
                out.train.overhead_seconds
          : 0;

  double single_ns = 0;
  double loop_ns = 0;
  double all_ns = 0;
  for (const OpResult& r : results) {
    if (r.op == "evaluate_move") single_ns = r.ns_per_op;
    if (r.op == "evaluate_move_loop") loop_ns = r.ns_per_op;
    if (r.op == "evaluate_move_all") all_ns = r.ns_per_op;
  }
  const double speedup = all_ns > 0 ? loop_ns / all_ns : 0;

  const ServeResult serve = RunServeFixture(fast);

  const std::string out_path = flags.GetString("out");
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }
  EmitJson(f, results, flags.GetString("commit"), trainer_steps_per_sec,
           speedup, serve);
  std::fclose(f);
  EmitJson(stdout, results, flags.GetString("commit"), trainer_steps_per_sec,
           speedup, serve);
  std::fprintf(stdout,
               "single=%.0fns all(8)=%.0fns loop(8)=%.0fns speedup=%.2fx\n",
               single_ns, all_ns, loop_ns, speedup);

  const double required = flags.GetDouble("check_speedup");
  if (required > 0 && speedup < required) {
    std::fprintf(stderr,
                 "FAIL: EvaluateMoveAll speedup %.2fx below required %.2fx\n",
                 speedup, required);
    return 1;
  }
  return 0;
}
