// Perf-regression harness: times the hot PartitionState operations and
// one short training run on the standard power-law micro fixture
// (2^18 vertices, 2^21 edges, EC2 8-DC topology) and writes a
// machine-readable BENCH_micro.json that CI archives per commit. Unlike
// the google-benchmark binary this needs no framework, prints one JSON
// document, and can gate the batched-evaluation and locality-order
// speedups:
//
//   rlcut_bench_report --out=BENCH_micro.json --commit=$(git rev-parse HEAD)
//   rlcut_bench_report --fast --check_speedup=1.3   # CI smoke gate
//   rlcut_bench_report --fast --check_locality_speedup=1.15
//   rlcut_bench_report --fast --reference=BENCH_micro.json  # CI perf gate
//
// `--check_speedup=R` exits non-zero if EvaluateMoveAll is not at least
// R times faster than the equivalent loop of single EvaluateMove calls.
// `--check_locality_speedup=R` exits non-zero unless the locality-
// ordered layout beats the natural layout by R on both the scoring
// sweep and the end-to-end trainer rate. `--reference=FILE` exits
// non-zero if trainer_steps_per_sec falls below `--trainer_floor_frac`
// of the committed value, or if any op's measured bytes_per_op exceeds
// its committed ceiling (steady-state evaluation ops must stay
// allocation-free). The 4-shard trainer rate is gated against the
// 1-shard rate measured in the same run (--shard4_ratio_floor), not
// against a committed absolute value.
//
// bytes_per_op is a real heap measurement, not an estimate: this TU
// replaces the global allocation functions with counting versions, and
// each timed op reports the heap bytes it allocated per call. Timings
// take the fastest of several chunks, which filters external load on
// shared CI runners.

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <new>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include <algorithm>

// ---- Counting allocator (whole-binary operator new/delete). ----------
// Relaxed atomics: the timed ops run single-threaded; the counters only
// need to be safe, not ordered, for the trainer's worker pool.

namespace {
std::atomic<uint64_t> g_heap_bytes{0};
std::atomic<uint64_t> g_heap_allocs{0};

void* CountedAlloc(std::size_t size, std::size_t align) {
  g_heap_bytes.fetch_add(size, std::memory_order_relaxed);
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p;
  if (align > alignof(std::max_align_t)) {
    p = std::aligned_alloc(align, (size + align - 1) / align * align);
  } else {
    p = std::malloc(size == 0 ? 1 : size);
  }
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size, 0); }
void* operator new[](std::size_t size) { return CountedAlloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

#include "cloud/topology.h"
#include "common/flags.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "graph/rlg.h"
#include "graph/stream.h"
#include "graph/temporal.h"
#include "graph/transform.h"
#include "partition/partition_state.h"
#include "rlcut/rlcut_partitioner.h"
#include "rlcut/session.h"

namespace rlcut {
namespace {

// Standard micro-fixture shape (overridable with --vertices/--edges
// for experiments; the committed BENCH_micro.json uses the defaults).
// 2^18 vertices / 2^21 edges puts the partition-state working set
// (~35 MB of count rows, metadata and CSR) well past L2 — small enough
// for sub-minute CI runs, large enough that memory layout (vertex
// order) is measurable instead of being hidden by a cache-resident
// working set.
constexpr VertexId kDefaultVertices = 1 << 18;
constexpr uint64_t kDefaultEdges = 1 << 21;

VertexId g_fixture_vertices = kDefaultVertices;
uint64_t g_fixture_edges = kDefaultEdges;

struct Fixture {
  explicit Fixture(ComputeModel model,
                   VertexOrderKind order = VertexOrderKind::kNatural)
      : topology(MakeEc2Topology()) {
    PowerLawOptions opt;
    opt.num_vertices = g_fixture_vertices;
    opt.num_edges = g_fixture_edges;
    graph = GeneratePowerLaw(opt);
    Rng rng(1);
    locations.resize(graph.num_vertices());
    for (auto& l : locations) {
      l = static_cast<DcId>(rng.UniformInt(topology.num_dcs()));
    }
    if (order != VertexOrderKind::kNatural) {
      // Same logical instance, relabeled: per-vertex attributes follow
      // their vertex, so ordered-vs-natural timings differ only in
      // memory layout.
      const VertexPermutation perm = BuildVertexOrder(graph, order);
      graph = ReorderVertices(graph, perm);
      locations = PermuteVertexValues(locations, perm);
    }
    sizes.assign(graph.num_vertices(), 1e6);
    PartitionConfig config;
    config.model = model;
    config.theta = PartitionState::AutoTheta(graph);
    state = std::make_unique<PartitionState>(&graph, &topology, &locations,
                                             &sizes, config);
    if (model == ComputeModel::kVertexCut) {
      Rng place_rng(4);
      for (EdgeId e = 0; e < graph.num_edges(); ++e) {
        state->PlaceEdge(
            e, static_cast<DcId>(place_rng.UniformInt(topology.num_dcs())));
      }
    } else {
      state->ResetDerived(locations);
    }
  }

  Graph graph;
  Topology topology;
  std::vector<DcId> locations;
  std::vector<double> sizes;
  std::unique_ptr<PartitionState> state;
};

struct OpResult {
  std::string op;
  double ns_per_op = 0;
  // Measured heap traffic: bytes passed to operator new during the
  // timed (post-warmup) region, divided by the op count. Steady-state
  // evaluation ops reuse their scratch and must report 0.
  double bytes_per_op = 0;
};

/// Times `body` (which performs `ops_per_call` logical operations per
/// invocation) over `reps` invocations after a 1/16 warmup. The warmup
/// also brings reusable scratch to its steady-state capacity, so the
/// allocation counters only see what the op allocates per call once
/// warm. ns_per_op is the fastest of kTimingChunks equal chunks — the
/// minimum is the least noise-sensitive location statistic on a loaded
/// shared host; bytes are summed over all chunks (allocation counts are
/// deterministic, timing is not).
OpResult TimeOp(const std::string& op, int64_t reps, int64_t ops_per_call,
                const std::function<void()>& body) {
  constexpr int kTimingChunks = 8;
  for (int64_t i = 0; i < reps / 16 + 1; ++i) body();
  const int64_t chunk_reps = std::max<int64_t>(1, reps / kTimingChunks);
  const uint64_t bytes_before =
      g_heap_bytes.load(std::memory_order_relaxed);
  double best_seconds = std::numeric_limits<double>::infinity();
  for (int c = 0; c < kTimingChunks; ++c) {
    WallTimer timer;
    for (int64_t i = 0; i < chunk_reps; ++i) body();
    best_seconds = std::min(best_seconds, timer.ElapsedSeconds());
  }
  const uint64_t bytes =
      g_heap_bytes.load(std::memory_order_relaxed) - bytes_before;
  OpResult result;
  result.op = op;
  result.ns_per_op = best_seconds * 1e9 /
                     static_cast<double>(chunk_reps * ops_per_call);
  result.bytes_per_op =
      static_cast<double>(bytes) /
      static_cast<double>(kTimingChunks * chunk_reps * ops_per_call);
  return result;
}

/// Streaming-session fixture: drives an RLCutSession over a diurnal
/// temporal stream in micro-batches (the rlcut_serve loop without the
/// daemon scaffolding) and reports sustained ingest throughput plus the
/// p99 micro-batch apply latency.
struct ServeResult {
  double edges_per_sec = 0;
  double p99_apply_ms = 0;
};

ServeResult RunServeFixture(bool fast) {
  TemporalStreamOptions stream;
  // Serve throughput is governed by the micro-batch apply path, not the
  // partition-state footprint; it keeps its own (small) fixed shape so
  // its committed numbers are independent of --vertices/--edges.
  constexpr VertexId kServeVertices = 1 << 12;
  constexpr uint64_t kServeEdges = 1 << 15;
  stream.num_vertices = fast ? kServeVertices / 4 : kServeVertices;
  stream.num_edges = fast ? kServeEdges / 4 : kServeEdges;
  stream.horizon_seconds = 24 * 3600;
  stream.seed = 7;
  const TemporalGraph temporal = GenerateDiurnalStream(stream);
  const uint64_t base_count = stream.num_edges / 5;
  const Graph base = temporal.Prefix(base_count);
  const Topology topology = MakeEc2Topology();
  GeoLocatorOptions geo;
  geo.num_dcs = topology.num_dcs();
  const std::vector<DcId> locations = AssignGeoLocations(base, geo);
  const std::vector<double> sizes = AssignInputSizes(base);

  PartitionerContext ctx;
  ctx.graph = &base;
  ctx.topology = &topology;
  ctx.locations = &locations;
  ctx.input_sizes = &sizes;
  ctx.theta = PartitionState::AutoTheta(base);
  ctx.seed = 7;
  RLCutSessionOptions options;
  options.initial.max_steps = 2;
  options.initial.seed = 7;
  options.incremental = options.initial;
  auto session = RLCutSession::Open(ctx, options).value();

  MigrationBudget budget;
  budget.max_vertices = stream.num_vertices / 16;
  (void)session->MaybeReoptimize(budget).value();
  (void)session->PublishPlan().value();

  const int num_batches = fast ? 12 : 24;
  StreamBuffer buffer;
  const std::vector<TimedEdge>& all = temporal.edges();
  for (uint64_t i = base_count; i < all.size(); ++i) {
    buffer.Push(StreamEvent{all[i], i});
  }
  const SimTime start = all[base_count].time;
  const SimTime end = all.back().time + SimTime(1);

  uint64_t ingested = 0;
  double apply_seconds = 0;
  std::vector<double> latencies_ms;
  for (int b = 1; b <= num_batches; ++b) {
    const SimTime watermark = SimTime::Micros(
        start.micros() + (end.micros() - start.micros()) * b / num_batches);
    const MicroBatch batch = buffer.Cut(watermark);
    WallTimer timer;
    const ApplyResult applied = session->ApplyDelta(batch).value();
    const double elapsed = timer.ElapsedSeconds();
    apply_seconds += elapsed;
    latencies_ms.push_back(elapsed * 1e3);
    ingested += applied.edges_applied;
    if (b % 4 == 0) {
      (void)session->MaybeReoptimize(budget).value();
      (void)session->PublishPlan().value();
    }
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  ServeResult result;
  result.edges_per_sec = apply_seconds > 0
                             ? static_cast<double>(ingested) / apply_seconds
                             : 0;
  result.p99_apply_ms =
      latencies_ms[static_cast<size_t>(0.99 * (latencies_ms.size() - 1))];
  return result;
}

// Minimal extraction from a committed BENCH_micro.json (a format this
// tool itself writes, so "key": number scanning is sufficient — no
// general JSON parser needed). Returns NaN when the key is absent.
double FindJsonNumber(const std::string& json, const std::string& key,
                      size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle, from);
  if (pos == std::string::npos) return std::nan("");
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

// bytes_per_op recorded for `op` in the reference; NaN when absent.
double FindReferenceOpBytes(const std::string& json, const std::string& op) {
  const size_t pos = json.find("\"op\": \"" + op + "\"");
  if (pos == std::string::npos) return std::nan("");
  return FindJsonNumber(json, "bytes_per_op", pos);
}

/// Ordered-vs-natural and out-of-core companion measurements emitted
/// alongside the classic fields.
struct LayoutResult {
  std::string order_name;
  // natural-layout ns / ordered-layout ns for EvaluateMoveAll (>1 means
  // the locality order is faster).
  double eval_move_all_speedup = 0;
  double trainer_ordered = 0;     // steps/s, locality-ordered layout
  double trainer_ordered_speedup = 0;  // ordered rate / natural rate
  double trainer_mmap = 0;        // steps/s through MmapGraph storage
  uint64_t mapped_bytes = 0;      // .rlg file size (mmap span)
  uint64_t dual_csr_bytes = 0;    // owned dual-CSR footprint, same shape
  uint64_t peak_rss_bytes = 0;    // process high-water mark (informational:
                                  // includes the in-memory fixtures; the
                                  // enforced RSS budget lives in the
                                  // rlcut_tool out-of-core smoke run)
};

void EmitJson(std::FILE* f, const std::vector<OpResult>& results,
              const std::string& commit, double trainer_steps_per_sec,
              double trainer_shard1, double trainer_shard4, double speedup,
              const LayoutResult& layout, const ServeResult& serve) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"commit\": \"%s\",\n", commit.c_str());
  std::fprintf(f, "  \"fixture\": {\"vertices\": %llu, \"edges\": %llu, "
                  "\"dcs\": 8, \"graph\": \"power_law\", "
                  "\"topology\": \"ec2\"},\n",
               static_cast<unsigned long long>(g_fixture_vertices),
               static_cast<unsigned long long>(g_fixture_edges));
  std::fprintf(f, "  \"evaluate_move_all_speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"trainer_steps_per_sec\": %.3f,\n",
               trainer_steps_per_sec);
  std::fprintf(f, "  \"trainer_steps_per_sec_shard1\": %.3f,\n",
               trainer_shard1);
  std::fprintf(f, "  \"trainer_steps_per_sec_shard4\": %.3f,\n",
               trainer_shard4);
  std::fprintf(f, "  \"vertex_order\": \"%s\",\n",
               layout.order_name.c_str());
  std::fprintf(f, "  \"evaluate_move_all_locality_speedup\": %.3f,\n",
               layout.eval_move_all_speedup);
  std::fprintf(f, "  \"trainer_steps_per_sec_locality\": %.3f,\n",
               layout.trainer_ordered);
  std::fprintf(f, "  \"trainer_locality_speedup\": %.3f,\n",
               layout.trainer_ordered_speedup);
  std::fprintf(f, "  \"trainer_steps_per_sec_mmap\": %.3f,\n",
               layout.trainer_mmap);
  std::fprintf(f, "  \"ooc_mapped_bytes\": %llu,\n",
               static_cast<unsigned long long>(layout.mapped_bytes));
  std::fprintf(f, "  \"ooc_dual_csr_bytes\": %llu,\n",
               static_cast<unsigned long long>(layout.dual_csr_bytes));
  std::fprintf(f, "  \"ooc_peak_rss_bytes\": %llu,\n",
               static_cast<unsigned long long>(layout.peak_rss_bytes));
  std::fprintf(f, "  \"serve_edges_per_sec\": %.1f,\n",
               serve.edges_per_sec);
  std::fprintf(f, "  \"serve_p99_apply_ms\": %.3f,\n", serve.p99_apply_ms);
  std::fprintf(f, "  \"ops\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"ns_per_op\": %.2f, "
                 "\"bytes_per_op\": %.0f}%s\n",
                 results[i].op.c_str(), results[i].ns_per_op,
                 results[i].bytes_per_op, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

}  // namespace
}  // namespace rlcut

int main(int argc, char** argv) {
  using namespace rlcut;

  FlagParser flags;
  flags.DefineString("out", "BENCH_micro.json", "output JSON path");
  flags.DefineString("commit", "unknown", "commit id stamped into the JSON");
  flags.DefineBool("fast", false, "reduced reps (CI smoke)");
  flags.DefineDouble("check_speedup", 0,
                     "fail unless EvaluateMoveAll beats the equivalent "
                     "EvaluateMove loop by this factor (0 = off)");
  flags.DefineString("reference", "",
                     "committed BENCH_micro.json to gate against: "
                     "trainer_steps_per_sec floor and per-op bytes_per_op "
                     "ceilings (empty = off)");
  flags.DefineDouble("trainer_floor_frac", 0.4,
                     "fail if trainer_steps_per_sec drops below this "
                     "fraction of the reference value (slack absorbs "
                     "shared-runner load; allocation gates are exact)");
  flags.DefineDouble("shard4_ratio_floor", 0.5,
                     "fail if the 4-shard trainer rate falls below this "
                     "fraction of the 1-shard rate measured in the same "
                     "run (a relative gate is load-independent, unlike "
                     "an absolute committed floor)");
  flags.DefineString("vertex_order", "degree",
                     "order for the locality-layout fixture: "
                     "natural | degree | locality (degree wins on this "
                     "workload: the trainer's low-degree agents mostly "
                     "touch hub neighbors, and degree order packs every "
                     "hub row into one cache-resident region)");
  flags.DefineDouble("check_locality_speedup", 0,
                     "fail unless the locality order beats natural by "
                     "this factor on both EvaluateMoveAll and trainer "
                     "steps/sec (0 = off)");
  flags.DefineInt("vertices", kDefaultVertices,
                  "power-law fixture vertices (default = committed shape)");
  flags.DefineInt("edges", kDefaultEdges,
                  "power-law fixture edges (default = committed shape)");
  flags.DefineDouble("trainer_sample_rate", 0.25,
                     "fixed per-step agent sample rate for the trainer "
                     "fixtures");
  flags.DefineInt("trainer_steps", 0,
                  "trainer fixture steps per run (0 = 2 with --fast, "
                  "4 otherwise)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bool fast = flags.GetBool("fast");
  const int64_t reps = fast ? 20000 : 200000;
  g_fixture_vertices = static_cast<VertexId>(flags.GetInt("vertices"));
  g_fixture_edges = static_cast<uint64_t>(flags.GetInt("edges"));
  const Result<VertexOrderKind> order_kind =
      ParseVertexOrderKind(flags.GetString("vertex_order"));
  if (!order_kind.ok()) {
    std::fprintf(stderr, "%s\n", order_kind.status().ToString().c_str());
    return 2;
  }

  Fixture hybrid(ComputeModel::kHybridCut);
  Fixture vertex_cut(ComputeModel::kVertexCut);
  // The same hybrid instance relabeled into the locality order: the
  // ordered-vs-natural deltas below isolate memory layout.
  Fixture hybrid_ordered(ComputeModel::kHybridCut, order_kind.value());
  const int num_dcs = hybrid.topology.num_dcs();

  std::vector<OpResult> results;
  EvalScratch scratch;
  Objective evals[kMaxDataCenters];
  Rng rng(2);

  results.push_back(
      TimeOp("evaluate_move", reps, 1, [&] {
        const VertexId v = static_cast<VertexId>(
            rng.UniformInt(hybrid.graph.num_vertices()));
        const DcId to = static_cast<DcId>(rng.UniformInt(num_dcs));
        volatile double sink =
            hybrid.state->EvaluateMove(v, to, &scratch).transfer_seconds;
        (void)sink;
      }));

  results.push_back(
      TimeOp("evaluate_move_all", reps, 1, [&] {
        const VertexId v = static_cast<VertexId>(
            rng.UniformInt(hybrid.graph.num_vertices()));
        hybrid.state->EvaluateMoveAll(v, &scratch, evals);
        volatile double sink = evals[0].transfer_seconds;
        (void)sink;
      }));

  // Ordered-vs-natural comparison pair. Both ops score vertices in the
  // trainer's visit order — ascending (degree, id), the Sec. V-C
  // sampling order — so they do identical logical work (the reorder
  // preserves degrees) and differ only in memory layout. A
  // uniform-random v would hide the cross-call neighbor reuse the
  // trainer actually gets from consecutive near-id agents.
  const auto trainer_visit_order = [](const Fixture& f) {
    std::vector<VertexId> order(f.graph.num_vertices());
    std::iota(order.begin(), order.end(), VertexId{0});
    std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
      const uint32_t da = f.graph.Degree(a);
      const uint32_t db = f.graph.Degree(b);
      if (da != db) return da < db;
      return a < b;
    });
    return order;
  };
  const std::vector<VertexId> visit_natural = trainer_visit_order(hybrid);
  const std::vector<VertexId> visit_ordered =
      trainer_visit_order(hybrid_ordered);

  size_t sweep_natural = 0;
  results.push_back(
      TimeOp("evaluate_move_all_sweep", reps, 1, [&] {
        const VertexId v = visit_natural[sweep_natural++];
        if (sweep_natural >= visit_natural.size()) sweep_natural = 0;
        hybrid.state->EvaluateMoveAll(v, &scratch, evals);
        volatile double sink = evals[0].transfer_seconds;
        (void)sink;
      }));

  size_t sweep_ordered = 0;
  results.push_back(
      TimeOp("evaluate_move_all_locality", reps, 1, [&] {
        const VertexId v = visit_ordered[sweep_ordered++];
        if (sweep_ordered >= visit_ordered.size()) sweep_ordered = 0;
        hybrid_ordered.state->EvaluateMoveAll(v, &scratch, evals);
        volatile double sink = evals[0].transfer_seconds;
        (void)sink;
      }));

  results.push_back(
      TimeOp("evaluate_move_loop", reps / 4, 1, [&] {
        const VertexId v = static_cast<VertexId>(
            rng.UniformInt(hybrid.graph.num_vertices()));
        double acc = 0;
        for (DcId to = 0; to < num_dcs; ++to) {
          acc += hybrid.state->EvaluateMove(v, to, &scratch)
                     .transfer_seconds;
        }
        volatile double sink = acc;
        (void)sink;
      }));

  results.push_back(
      TimeOp("evaluate_place_edge_all", reps, 1, [&] {
        const EdgeId e = rng.UniformInt(vertex_cut.graph.num_edges());
        vertex_cut.state->EvaluatePlaceEdgeAll(e, &scratch, evals);
        volatile double sink = evals[0].transfer_seconds;
        (void)sink;
      }));

  results.push_back(
      TimeOp("move_master", reps, 1, [&] {
        const VertexId v = static_cast<VertexId>(
            rng.UniformInt(hybrid.graph.num_vertices()));
        hybrid.state->MoveMaster(
            v, static_cast<DcId>(rng.UniformInt(num_dcs)));
      }));

  results.push_back(
      TimeOp("place_edge", reps, 1, [&] {
        const EdgeId e = rng.UniformInt(vertex_cut.graph.num_edges());
        vertex_cut.state->PlaceEdge(
            e, static_cast<DcId>(rng.UniformInt(num_dcs)));
      }));

  results.push_back(
      TimeOp("current_objective", reps, 1, [&] {
        volatile double sink =
            hybrid.state->CurrentObjective().transfer_seconds;
        (void)sink;
      }));

  // Short end-to-end training run (Fig. 8 style): steps/sec over the
  // same instance through the full batched-scoring trainer path.
  PartitionerContext ctx;
  ctx.graph = &hybrid.graph;
  ctx.topology = &hybrid.topology;
  ctx.locations = &hybrid.locations;
  ctx.input_sizes = &hybrid.sizes;
  ctx.seed = 7;
  RLCutOptions train_opt;
  const int64_t trainer_steps = flags.GetInt("trainer_steps");
  train_opt.max_steps = trainer_steps > 0 ? trainer_steps : (fast ? 2 : 4);
  train_opt.fixed_sample_rate = flags.GetDouble("trainer_sample_rate");
  train_opt.convergence_epsilon = 0;
  const RLCutRunOutput out = RunRLCut(ctx, train_opt);
  const double trainer_steps_per_sec =
      out.train.overhead_seconds > 0
          ? static_cast<double>(out.train.steps.size()) /
                out.train.overhead_seconds
          : 0;

  // Shard-scaling fixture: the same run pinned to 1 and 4 shards. On a
  // multi-core runner shard4/shard1 tracks the scoring parallelism the
  // sharded runtime exposes; on a single-core runner the ratio is ~1.0
  // (the dispatch falls back inline). Both land in the JSON so CI can
  // gate them against the committed reference.
  auto trainer_rate_with_shards = [&](int num_shards) {
    RLCutOptions opt = train_opt;
    opt.num_shards = num_shards;
    const RLCutRunOutput run = RunRLCut(ctx, opt);
    return run.train.overhead_seconds > 0
               ? static_cast<double>(run.train.steps.size()) /
                     run.train.overhead_seconds
               : 0;
  };
  const double trainer_shard1 = trainer_rate_with_shards(1);
  const double trainer_shard4 = trainer_rate_with_shards(4);

  // Ordered-vs-natural trainer rates. Best-of-3 on each layout: the
  // runs are short, and the ratio gate needs a location statistic less
  // noise-sensitive than a single run.
  const auto trainer_rate_for = [&](const PartitionerContext& c) {
    double best = 0;
    for (int t = 0; t < 3; ++t) {
      const RLCutRunOutput run = RunRLCut(c, train_opt);
      const double rate =
          run.train.overhead_seconds > 0
              ? static_cast<double>(run.train.steps.size()) /
                    run.train.overhead_seconds
              : 0;
      best = std::max(best, rate);
    }
    return best;
  };
  PartitionerContext ordered_ctx = ctx;
  ordered_ctx.graph = &hybrid_ordered.graph;
  ordered_ctx.locations = &hybrid_ordered.locations;
  ordered_ctx.input_sizes = &hybrid_ordered.sizes;
  double trainer_natural_best = trainer_rate_for(ctx);
  double trainer_ordered_best = trainer_rate_for(ordered_ctx);
  // A paired measurement can be poisoned by a transient load spike on
  // one side (shared CI runners especially). When the ratio gate is
  // armed and the first pair lands below the floor, re-measure the pair
  // up to twice and keep the best ratio seen.
  const double locality_required = flags.GetDouble("check_locality_speedup");
  for (int retry = 0;
       retry < 2 && locality_required > 0 && trainer_natural_best > 0 &&
       trainer_ordered_best / trainer_natural_best < locality_required;
       ++retry) {
    const double natural = trainer_rate_for(ctx);
    const double ordered = trainer_rate_for(ordered_ctx);
    if (natural > 0 &&
        ordered / natural > trainer_ordered_best / trainer_natural_best) {
      trainer_natural_best = natural;
      trainer_ordered_best = ordered;
    }
  }

  // Out-of-core fixture: the natural-order instance round-tripped
  // through an .rlg file and trained via the memory-mapped loader. The
  // rate quantifies mapped-storage overhead (should be ~1x once pages
  // are resident); the byte counts give the footprint the rlcut_tool
  // RSS-budget smoke run is gated against.
  LayoutResult layout;
  layout.order_name = VertexOrderKindName(order_kind.value());
  {
    const std::string rlg_path = flags.GetString("out") + ".tmp.rlg";
    if (Status s = SaveRlgGraph(hybrid.graph, rlg_path); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 2;
    }
    Result<MmapGraph> mapped = MmapGraph::Open(rlg_path);
    if (!mapped.ok()) {
      std::fprintf(stderr, "%s\n", mapped.status().ToString().c_str());
      return 2;
    }
    PartitionerContext mmap_ctx = ctx;
    mmap_ctx.graph = &mapped.value().graph();
    layout.trainer_mmap = trainer_rate_for(mmap_ctx);
    layout.mapped_bytes = mapped.value().mapped_bytes();
    layout.dual_csr_bytes = DualCsrBytes(
        hybrid.graph.num_vertices(), hybrid.graph.num_edges());
    std::remove(rlg_path.c_str());
  }
  layout.peak_rss_bytes = PeakRssBytes();

  double single_ns = 0;
  double loop_ns = 0;
  double all_ns = 0;
  double sweep_ns = 0;
  double all_ordered_ns = 0;
  for (const OpResult& r : results) {
    if (r.op == "evaluate_move") single_ns = r.ns_per_op;
    if (r.op == "evaluate_move_loop") loop_ns = r.ns_per_op;
    if (r.op == "evaluate_move_all") all_ns = r.ns_per_op;
    if (r.op == "evaluate_move_all_sweep") sweep_ns = r.ns_per_op;
    if (r.op == "evaluate_move_all_locality") all_ordered_ns = r.ns_per_op;
  }
  const double speedup = all_ns > 0 ? loop_ns / all_ns : 0;
  layout.eval_move_all_speedup =
      all_ordered_ns > 0 ? sweep_ns / all_ordered_ns : 0;
  layout.trainer_ordered = trainer_ordered_best;
  layout.trainer_ordered_speedup =
      trainer_natural_best > 0 ? trainer_ordered_best / trainer_natural_best
                               : 0;

  const ServeResult serve = RunServeFixture(fast);

  const std::string out_path = flags.GetString("out");
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }
  EmitJson(f, results, flags.GetString("commit"), trainer_steps_per_sec,
           trainer_shard1, trainer_shard4, speedup, layout, serve);
  std::fclose(f);
  EmitJson(stdout, results, flags.GetString("commit"), trainer_steps_per_sec,
           trainer_shard1, trainer_shard4, speedup, layout, serve);
  std::fprintf(stdout,
               "single=%.0fns all(8)=%.0fns loop(8)=%.0fns speedup=%.2fx\n",
               single_ns, all_ns, loop_ns, speedup);
  std::fprintf(stdout,
               "%s order: eval_move_all %.2fx, trainer %.2fx "
               "(%.0f vs %.0f steps/s), mmap trainer %.0f steps/s\n",
               layout.order_name.c_str(), layout.eval_move_all_speedup,
               layout.trainer_ordered_speedup, trainer_ordered_best,
               trainer_natural_best, layout.trainer_mmap);

  const double required = flags.GetDouble("check_speedup");
  if (required > 0 && speedup < required) {
    std::fprintf(stderr,
                 "FAIL: EvaluateMoveAll speedup %.2fx below required %.2fx\n",
                 speedup, required);
    return 1;
  }

  if (locality_required > 0 &&
      (layout.eval_move_all_speedup < locality_required ||
       layout.trainer_ordered_speedup < locality_required)) {
    std::fprintf(stderr,
                 "FAIL: %s order speedup eval=%.2fx trainer=%.2fx, "
                 "required %.2fx on both\n",
                 layout.order_name.c_str(), layout.eval_move_all_speedup,
                 layout.trainer_ordered_speedup, locality_required);
    return 1;
  }

  // Shard scaling is gated relative to the 1-shard rate measured in
  // this very run: both rates see the same machine load, so the ratio
  // is stable where an absolute committed floor is not.
  const double shard4_ratio_floor = flags.GetDouble("shard4_ratio_floor");
  if (shard4_ratio_floor > 0 && trainer_shard1 > 0 &&
      trainer_shard4 < shard4_ratio_floor * trainer_shard1) {
    std::fprintf(stderr,
                 "FAIL: shard4 trainer rate %.0f steps/s below %.0f%% of "
                 "same-run shard1 rate %.0f\n",
                 trainer_shard4, shard4_ratio_floor * 100, trainer_shard1);
    return 1;
  }

  // ---- Regression gates against the committed reference. -------------
  const std::string ref_path = flags.GetString("reference");
  if (!ref_path.empty()) {
    std::ifstream ref_file(ref_path);
    if (!ref_file) {
      std::fprintf(stderr, "cannot read reference %s\n", ref_path.c_str());
      return 2;
    }
    std::ostringstream ref_stream;
    ref_stream << ref_file.rdbuf();
    const std::string ref = ref_stream.str();
    bool gate_failed = false;

    const double floor_frac = flags.GetDouble("trainer_floor_frac");
    const auto gate_trainer_rate = [&](const char* key, double measured) {
      const double committed = FindJsonNumber(ref, key);
      if (std::isnan(committed) || committed <= 0) return;
      const double floor = committed * floor_frac;
      if (measured < floor) {
        std::fprintf(stderr,
                     "FAIL: %s %.0f steps/s below floor %.0f "
                     "(%.0f%% of committed %.0f)\n",
                     key, measured, floor, floor_frac * 100, committed);
        gate_failed = true;
      }
    };
    gate_trainer_rate("trainer_steps_per_sec", trainer_steps_per_sec);
    gate_trainer_rate("trainer_steps_per_sec_shard1", trainer_shard1);
    // shard4 is deliberately NOT gated against the committed absolute
    // value: its rate depends on how many cores the runner happens to
    // grant, which the reference machine does not predict. The
    // --shard4_ratio_floor gate above compares it to the shard1 rate
    // measured in the same run instead.

    // Allocation ceilings are near-exact: heap traffic per op does not
    // depend on machine load. The +1 byte/op slack only forgives a rare
    // one-off scratch growth that lands inside the timed region.
    for (const OpResult& r : results) {
      const double ceiling = FindReferenceOpBytes(ref, r.op);
      if (std::isnan(ceiling)) continue;
      if (r.bytes_per_op > ceiling + 1.0) {
        std::fprintf(stderr,
                     "FAIL: %s allocates %.2f bytes/op, committed "
                     "ceiling is %.0f\n",
                     r.op.c_str(), r.bytes_per_op, ceiling);
        gate_failed = true;
      }
    }
    if (gate_failed) return 1;
    std::fprintf(stdout, "reference gates passed (%s)\n", ref_path.c_str());
  }
  return 0;
}
