// rlcut_tool: command-line partitioner. Loads a graph (SNAP edge list or
// a built-in dataset preset), partitions it across a geo-distributed
// topology with RLCut or any baseline, reports the Eq. 1-5 quality
// metrics, and optionally saves/loads the plan, a Chrome-trace JSON of
// the run, and a metrics CSV.
//
// Examples:
//   rlcut_tool --dataset=TW --scale=2000 --method=RLCut --t_opt=5
//   rlcut_tool --input=graph.el --method=Ginger --dcs=4
//   rlcut_tool --dataset=LJ --load_plan=plan.txt        # evaluate a plan
//   rlcut_tool --dataset=LJ --method=RLCut --save_plan=plan.txt
//   rlcut_tool --dataset=TW --method=RLCut --trace_out=trace.json \
//       --metrics_out=metrics.csv   # open trace.json in ui.perfetto.dev
//   rlcut_tool --dataset=LJ --method=RLCut --stop_after_step=5 \
//       --checkpoint_out=run.ckpt   # pause and snapshot a training run
//   rlcut_tool --dataset=LJ --method=RLCut --resume_from=run.ckpt
//   rlcut_tool --dataset=LJ --method=RLCut --net_schedule=diurnal.sched
//   rlcut_tool --dataset=LJ --method=RLCut --checkpoint_out=run.ckpt \
//       --checkpoint_every=2   # crash-consistent rotating auto-saves
//   rlcut_tool --dataset=LJ --method=RLCut \
//       --faults='threadpool.task_throw:prob=0.05'  # fault drill
//   rlcut_tool --dataset=TW --method=RLCut --vertex_order=degree \
//       --save_plan=plan.txt   # train renumbered; plan in original ids
//   rlcut_tool --gen_vertices=1048576 --gen_edges=33554432 \
//       --vertex_order=degree --save_rlg=tw.rlg --convert_only
//   rlcut_tool --input_rlg=tw.rlg --method=RLCut --t_opt=30 \
//       --mmap_budget_mb=64 --max_rss_mb=344   # out-of-core training

#include <unistd.h>

#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "baselines/partitioner.h"
#include "cloud/topology.h"
#include "cloud/topology_schedule.h"
#include "common/atomic_file.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "fault/fault.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "graph/io.h"
#include "graph/rlg.h"
#include "graph/transform.h"
#include "net/replica_service.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/metrics.h"
#include "partition/plan_io.h"
#include "rlcut/checkpoint.h"
#include "rlcut/rlcut_partitioner.h"

namespace {

using namespace rlcut;

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

std::string KnownMethods() {
  std::string out;
  for (const PartitionerInfo& info : ListPartitioners()) {
    if (!out.empty()) out += ", ";
    out += info.name;
  }
  return out;
}

Result<Topology> MakeTopologyFromFlags(const FlagParser& flags) {
  const int dcs = static_cast<int>(flags.GetInt("dcs"));
  const std::string& het = flags.GetString("heterogeneity");
  Heterogeneity level;
  if (het == "low") {
    level = Heterogeneity::kLow;
  } else if (het == "medium") {
    level = Heterogeneity::kMedium;
  } else if (het == "high") {
    level = Heterogeneity::kHigh;
  } else {
    return Status::InvalidArgument("unknown heterogeneity: " + het);
  }
  if (dcs < 2 || dcs > 8) {
    return Status::InvalidArgument("--dcs must be in [2, 8]");
  }
  return MakeEc2Topology(dcs, level);
}

Result<Workload> MakeWorkloadFromFlags(const FlagParser& flags) {
  const std::string& name = flags.GetString("workload");
  if (name == "PR") return Workload::PageRank();
  if (name == "SSSP") return Workload::Sssp();
  if (name == "SI") return Workload::SubgraphIsomorphism();
  return Status::InvalidArgument("unknown workload: " + name +
                                 " (use PR, SSSP or SI)");
}

constexpr uint64_t kMiB = 1024 * 1024;

// How the tool's working ids relate to the input's original ids: either
// an in-process renumbering (--vertex_order; perm + edge map), or a
// renumbered .rlg file's orig-ids section (vertices only — the file does
// not record original edge ids). At most one is active.
struct IdMapping {
  VertexPermutation perm;               // empty = no in-process reorder
  std::vector<EdgeId> old_edge_of_new;  // edge map for the reorder
  std::span<const VertexId> orig_of_new;  // from a mapped .rlg file

  bool active() const {
    return !perm.new_of_old.empty() || !orig_of_new.empty();
  }
};

// Maps a plan computed on the tool's working ids back to original input
// ids before it is written out. Published plans are always in original
// ids, whatever order training ran in.
Result<PartitionPlan> PlanToOriginalIds(PartitionPlan plan,
                                        const IdMapping& ids) {
  if (!ids.perm.new_of_old.empty()) {
    plan.masters = UnpermuteVertexValues(plan.masters, ids.perm);
    if (!plan.edge_dcs.empty()) {
      std::vector<DcId> edge_dcs(plan.edge_dcs.size());
      for (EdgeId e = 0; e < plan.edge_dcs.size(); ++e) {
        edge_dcs[ids.old_edge_of_new[e]] = plan.edge_dcs[e];
      }
      plan.edge_dcs = std::move(edge_dcs);
    }
    return plan;
  }
  if (!ids.orig_of_new.empty()) {
    if (!plan.edge_dcs.empty()) {
      return Status::InvalidArgument(
          "cannot map per-edge placements back to original ids from a "
          "renumbered .rlg file (no edge mapping is stored); re-run on "
          "the original edge list with --vertex_order");
    }
    std::vector<DcId> masters(plan.masters.size());
    for (VertexId v = 0; v < plan.masters.size(); ++v) {
      masters[ids.orig_of_new[v]] = plan.masters[v];
    }
    plan.masters = std::move(masters);
  }
  return plan;
}

// Maps a plan written in original input ids onto the tool's working ids
// so --load_plan evaluates correctly on a renumbered graph.
Result<PartitionPlan> PlanToWorkingIds(PartitionPlan plan,
                                       const IdMapping& ids,
                                       const Graph& graph) {
  if (!ids.active()) return plan;
  if (plan.masters.size() != graph.num_vertices()) {
    return Status::InvalidArgument(
        "plan has " + std::to_string(plan.masters.size()) +
        " masters but the graph has " +
        std::to_string(graph.num_vertices()) + " vertices");
  }
  if (!ids.perm.new_of_old.empty()) {
    plan.masters = PermuteVertexValues(plan.masters, ids.perm);
    if (!plan.edge_dcs.empty()) {
      std::vector<DcId> edge_dcs(plan.edge_dcs.size());
      for (EdgeId e = 0; e < edge_dcs.size(); ++e) {
        edge_dcs[e] = plan.edge_dcs[ids.old_edge_of_new[e]];
      }
      plan.edge_dcs = std::move(edge_dcs);
    }
    return plan;
  }
  if (!plan.edge_dcs.empty()) {
    return Status::InvalidArgument(
        "cannot map per-edge placements onto a renumbered .rlg file "
        "(no edge mapping is stored); evaluate the plan on the "
        "original edge list");
  }
  std::vector<DcId> masters(plan.masters.size());
  for (VertexId v = 0; v < plan.masters.size(); ++v) {
    masters[v] = plan.masters[ids.orig_of_new[v]];
  }
  plan.masters = std::move(masters);
  return plan;
}

// Removes a throwaway .rlg staging file (the --graph_store=mmap path
// without --save_rlg) on every exit path.
struct TempFileGuard {
  std::string path;
  ~TempFileGuard() {
    if (!path.empty()) std::remove(path.c_str());
  }
};

void PrintPerDcTable(const PartitionState& state, std::ostream& os) {
  TableWriter table({"DC", "Masters", "Edges"});
  for (int r = 0; r < state.num_dcs(); ++r) {
    table.AddRow({state.topology().dc(r).name, Fmt(state.MasterCount(r)),
                  Fmt(state.EdgeCount(r))});
  }
  table.Print(os);
}

// Replays a --net_schedule file over the final plan: re-prices the
// layout under the effective topology after every event step and
// tabulates drift / objective / cost. Restores the base topology before
// returning (the schedule's topologies are locals).
Status ReplaySchedule(const std::string& path, const Topology& base,
                      PartitionState* state, std::ostream& os) {
  Result<TopologySchedule> schedule = LoadTopologySchedule(path, base);
  if (!schedule.ok()) return schedule.status();
  os << "\nNetwork schedule " << path << " (" << schedule->events().size()
     << " events):\n";
  TableWriter table({"Time", "Drift", "TransferSec", "Cost$"});
  Topology previous = base;
  SimTime last_time = -1;
  for (const TopologyEvent& event : schedule->events()) {
    if (event.step == last_time) continue;  // one row per event time
    last_time = event.step;
    Topology effective = schedule->EffectiveAt(event.step);
    const double drift = TopologyDrift(previous, effective);
    state->UpdateTopology(&effective);
    const PartitionReport report = MakeReport(*state);
    table.AddRow({Fmt(event.step.seconds()), Fmt(drift),
                  Fmt(report.transfer_seconds),
                  Fmt(report.total_cost)});
    previous = std::move(effective);
    state->UpdateTopology(&base);  // effective dies at end of iteration
  }
  table.Print(os);
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("input", "", "SNAP edge-list file (overrides --dataset)");
  flags.DefineString("dataset", "LJ", "built-in preset: LJ/OT/UK/IT/TW");
  flags.DefineInt("scale", 2000, "preset down-scale factor");
  flags.DefineString("input_rlg", "",
                     "memory-mapped .rlg graph for out-of-core runs "
                     "(overrides --input/--dataset; see docs/performance.md)");
  flags.DefineInt("gen_vertices", 0,
                  "generate a Chung-Lu power-law graph with this many "
                  "vertices instead of loading (with --gen_edges)");
  flags.DefineInt("gen_edges", 0, "edge count for --gen_vertices");
  flags.DefineString("vertex_order", "natural",
                     "renumber vertices before partitioning: natural, "
                     "degree or locality; plans are still published in "
                     "original input ids (a checkpoint property: resuming "
                     "requires the same value)");
  flags.DefineString("save_rlg", "",
                     "write the loaded (and renumbered) graph as .rlg "
                     "here, recording original ids when renumbered");
  flags.DefineBool("convert_only", false,
                   "exit after writing --save_rlg (bounded-memory "
                   "converter mode; nothing is partitioned)");
  flags.DefineString("graph_store", "memory",
                     "memory trains on the heap-owned graph; mmap stages "
                     "it to .rlg (--save_rlg or a temp file) and trains "
                     "through the mapping");
  flags.DefineInt("mmap_budget_mb", 0,
                  "residency governor budget for mapped graphs: drop "
                  "mapped pages whenever RSS exceeds this many MiB "
                  "(0 = off)");
  flags.DefineInt("max_rss_mb", 0,
                  "fail the run if peak RSS (getrusage) exceeds this "
                  "many MiB (0 = off)");
  flags.DefineString("method", "RLCut",
                     "partitioner name; one of: " + KnownMethods());
  flags.DefineString("workload", "PR", "traffic profile: PR, SSSP or SI");
  flags.DefineInt("dcs", 8, "number of EC2-profile DCs (2-8)");
  flags.DefineString("heterogeneity", "medium", "low, medium or high");
  flags.DefineDouble("budget_fraction", 0.4,
                     "budget as a fraction of the centralized-move cost");
  flags.DefineDouble("t_opt", 0, "RLCut time budget in seconds (0 = off)");
  flags.DefineInt("shards", 0,
                  "RLCut logical shard count — a checkpoint property: "
                  "resuming requires the same value, any thread count "
                  "(0 = default, see docs/sharding.md)");
  flags.DefineInt("theta", 0, "hybrid-cut threshold (0 = auto)");
  flags.DefineInt("seed", 1, "random seed");
  flags.DefineString("save_plan", "", "write the computed plan here");
  flags.DefineString("load_plan", "",
                     "evaluate this plan instead of partitioning");
  flags.DefineString("trace_out", "",
                     "write a Chrome-trace JSON of the run here "
                     "(open in ui.perfetto.dev or chrome://tracing)");
  flags.DefineString("metrics_out", "",
                     "write a CSV snapshot of all recorded metrics here");
  flags.DefineString("checkpoint_out", "",
                     "write an RLCut trainer checkpoint here (RLCut only)");
  flags.DefineString("resume_from", "",
                     "resume RLCut training from this checkpoint");
  flags.DefineInt("stop_after_step", -1,
                  "pause RLCut training before this step "
                  "(use with --checkpoint_out; -1 = run to completion)");
  flags.DefineString("net_schedule", "",
                     "replay this network schedule file over the final "
                     "plan (see docs/dynamic_environments.md)");
  flags.DefineInt("checkpoint_every", 0,
                  "auto-checkpoint RLCut training every N steps to "
                  "--checkpoint_out, rotating the previous save to "
                  "<path>.prev (0 = only the final checkpoint)");
  flags.DefineString("faults", "",
                     "arm this fault-injection spec for the run, e.g. "
                     "'threadpool.task_throw:prob=0.05' "
                     "(see docs/robustness.md)");
  flags.DefineInt("fault_seed", 1, "seed for probabilistic fault triggers");
  flags.DefineString("replica_endpoint", "",
                     "mirror the evolving plan to a rlcut_replica worker "
                     "at host:port while training (RLCut only; exits "
                     "non-zero unless the replica converges — see "
                     "docs/distributed.md)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.Usage(argv[0]);
    return 0;
  }

  // A crash (or an injected fault) in an earlier run can leave a staging
  // file next to an atomic-save target; clear them before writing.
  for (const char* target : {"save_plan", "checkpoint_out"}) {
    const std::string& path = flags.GetString(target);
    if (!path.empty() && RemoveStaleTempFile(path)) {
      std::cout << "Removed stale staging file " << TempPathFor(path)
                << " left by an interrupted run\n";
    }
  }

  if (!flags.GetString("faults").empty()) {
    fault::FaultSchedule schedule;
    std::string error;
    if (!fault::FaultSchedule::Parse(
            flags.GetString("faults"),
            static_cast<uint64_t>(flags.GetInt("fault_seed")), &schedule,
            &error)) {
      return Fail(Status::InvalidArgument("--faults: " + error));
    }
    fault::Arm(schedule);
    std::cout << "Fault injection armed: " << schedule.ToSpec() << "\n";
  }

  // Observability: install the trace recorder before any instrumented
  // work so partitioning, training and evaluation all land in the trace.
  obs::TraceRecorder trace_recorder;
  const bool tracing = !flags.GetString("trace_out").empty();
  if (tracing) obs::SetTraceRecorder(&trace_recorder);
  if (!flags.GetString("metrics_out").empty()) obs::SetDetailedMetrics(true);

  // ---- Problem construction ----------------------------------------------
  Result<VertexOrderKind> order_kind =
      ParseVertexOrderKind(flags.GetString("vertex_order"));
  if (!order_kind.ok()) return Fail(order_kind.status());
  const std::string& graph_store_kind = flags.GetString("graph_store");
  if (graph_store_kind != "memory" && graph_store_kind != "mmap") {
    return Fail(Status::InvalidArgument("--graph_store must be memory or "
                                        "mmap, got " + graph_store_kind));
  }
  if (flags.GetBool("convert_only") && flags.GetString("save_rlg").empty()) {
    return Fail(
        Status::InvalidArgument("--convert_only requires --save_rlg"));
  }
  MmapGraph::Options mmap_options;
  mmap_options.budget_bytes =
      static_cast<size_t>(flags.GetInt("mmap_budget_mb")) * kMiB;

  GraphStore store;
  std::string graph_label;
  IdMapping ids;
  TempFileGuard temp_rlg;
  if (!flags.GetString("input_rlg").empty()) {
    if (*order_kind != VertexOrderKind::kNatural) {
      return Fail(Status::InvalidArgument(
          "--vertex_order applies when building the graph in memory; "
          "bake the order into the file at conversion time instead "
          "(--save_rlg --convert_only --vertex_order=...)"));
    }
    Result<GraphStore> mapped =
        GraphStore::OpenMapped(flags.GetString("input_rlg"), mmap_options);
    if (!mapped.ok()) return Fail(mapped.status());
    store = std::move(*mapped);
    ids.orig_of_new = store.orig_of_new();
    graph_label = flags.GetString("input_rlg") + " (mmap)";
  } else if (flags.GetInt("gen_vertices") > 0) {
    PowerLawOptions gen;
    gen.num_vertices =
        static_cast<VertexId>(flags.GetInt("gen_vertices"));
    gen.num_edges = static_cast<uint64_t>(flags.GetInt("gen_edges"));
    gen.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    if (gen.num_edges == 0) {
      return Fail(
          Status::InvalidArgument("--gen_vertices requires --gen_edges"));
    }
    store = GraphStore::InMemory(GeneratePowerLaw(gen));
    graph_label = "powerlaw(" + std::to_string(gen.num_vertices) + ", " +
                  std::to_string(gen.num_edges) + ")";
  } else if (!flags.GetString("input").empty()) {
    Result<Graph> loaded = LoadEdgeListFile(flags.GetString("input"));
    if (!loaded.ok()) return Fail(loaded.status());
    store = GraphStore::InMemory(std::move(*loaded));
    graph_label = flags.GetString("input");
  } else {
    Result<Dataset> dataset = ParseDataset(flags.GetString("dataset"));
    if (!dataset.ok()) return Fail(dataset.status());
    store = GraphStore::InMemory(
        LoadDataset(*dataset, static_cast<uint64_t>(flags.GetInt("scale")),
                    static_cast<uint64_t>(flags.GetInt("seed"))));
    graph_label = DatasetName(*dataset) + " @1/" +
                  std::to_string(flags.GetInt("scale"));
  }

  Result<Topology> topology = MakeTopologyFromFlags(flags);
  if (!topology.ok()) return Fail(topology.status());
  Result<Workload> workload = MakeWorkloadFromFlags(flags);
  if (!workload.ok()) return Fail(workload.status());

  // Preflight --net_schedule: the replay happens after (potentially
  // long) training, so a missing or malformed file must fail here, not
  // at the end of the run.
  if (!flags.GetString("net_schedule").empty()) {
    Result<TopologySchedule> preflight =
        LoadTopologySchedule(flags.GetString("net_schedule"), *topology);
    if (!preflight.ok()) return Fail(preflight.status());
  }

  // Locations and input sizes are assigned on the input-id graph and
  // permuted alongside any renumbering, so --vertex_order changes the
  // memory layout of the run but never the problem instance.
  GeoLocatorOptions geo;
  geo.num_dcs = topology->num_dcs();
  geo.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  std::vector<DcId> locations = AssignGeoLocations(store.graph(), geo);
  std::vector<double> input_sizes = AssignInputSizes(store.graph());

  if (*order_kind != VertexOrderKind::kNatural) {
    ids.perm = BuildVertexOrder(store.graph(), *order_kind);
    Graph reordered =
        ReorderVertices(store.graph(), ids.perm, &ids.old_edge_of_new);
    store = GraphStore::InMemory(std::move(reordered));
    locations = PermuteVertexValues(locations, ids.perm);
    input_sizes = PermuteVertexValues(input_sizes, ids.perm);
  }

  // --save_rlg: write the working graph, recording original ids whenever
  // the working ids differ from the input's.
  if (!flags.GetString("save_rlg").empty()) {
    const std::string& rlg_path = flags.GetString("save_rlg");
    const std::span<const VertexId> orig =
        !ids.perm.old_of_new.empty()
            ? std::span<const VertexId>(ids.perm.old_of_new)
            : ids.orig_of_new;
    if (Status s = WriteRlgFile(store.graph(), nullptr, orig, rlg_path);
        !s.ok()) {
      return Fail(s);
    }
    std::cout << "Graph (" << VertexOrderKindName(*order_kind)
              << " order) written to " << rlg_path << "\n";
    if (flags.GetBool("convert_only")) return 0;
  }

  // --graph_store=mmap: restage the graph through a .rlg mapping so the
  // run exercises the out-of-core path end to end. Note the in-memory
  // build phase already counted toward peak RSS; for a true
  // bounded-memory run convert first and reopen with --input_rlg.
  if (graph_store_kind == "mmap" && !store.mapped()) {
    std::string rlg_path = flags.GetString("save_rlg");
    if (rlg_path.empty()) {
      rlg_path = temp_rlg.path =
          (std::filesystem::temp_directory_path() /
           ("rlcut_tool." + std::to_string(::getpid()) + ".staging.rlg"))
              .string();
      const std::span<const VertexId> orig =
          !ids.perm.old_of_new.empty()
              ? std::span<const VertexId>(ids.perm.old_of_new)
              : std::span<const VertexId>{};
      if (Status s = WriteRlgFile(store.graph(), nullptr, orig, rlg_path);
          !s.ok()) {
        return Fail(s);
      }
    }
    Result<GraphStore> mapped = GraphStore::OpenMapped(rlg_path, mmap_options);
    if (!mapped.ok()) return Fail(mapped.status());
    store = std::move(*mapped);
    graph_label += " (mmap)";
  }

  const Graph& graph = store.graph();

  const DcId hub = topology->CheapestUploadDc();
  double centralized = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (locations[v] != hub) {
      centralized += topology->UploadCost(locations[v], input_sizes[v]);
    }
  }

  PartitionerContext ctx;
  ctx.graph = &graph;
  ctx.topology = &*topology;
  ctx.locations = &locations;
  ctx.input_sizes = &input_sizes;
  ctx.workload = *workload;
  ctx.theta = flags.GetInt("theta") > 0
                  ? static_cast<uint32_t>(flags.GetInt("theta"))
                  : PartitionState::AutoTheta(graph);
  ctx.budget = flags.GetDouble("budget_fraction") * centralized;
  ctx.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::cout << "Graph " << graph_label << ": " << graph.num_vertices()
            << " vertices, " << graph.num_edges() << " edges; "
            << topology->num_dcs() << " DCs ("
            << flags.GetString("heterogeneity") << "), theta=" << ctx.theta
            << ", budget=$" << ctx.budget << "\n\n";

  // Writes --trace_out / --metrics_out if requested. Called on every
  // successful exit path; uninstalls the recorder first so no span can
  // record while the buffer is being serialized.
  auto write_observability_outputs = [&]() -> Status {
    if (tracing) {
      obs::SetTraceRecorder(nullptr);
      const std::string& path = flags.GetString("trace_out");
      std::ofstream os(path);
      if (!os) return Status::IoError("cannot open " + path);
      trace_recorder.WriteChromeTrace(os);
      if (!os.good()) return Status::IoError("failed writing " + path);
      std::cout << "\nTrace (" << trace_recorder.size() << " spans) written"
                << " to " << path << "\n";
    }
    if (!flags.GetString("metrics_out").empty()) {
      const std::string& path = flags.GetString("metrics_out");
      std::ofstream os(path);
      if (!os) return Status::IoError("cannot open " + path);
      obs::DefaultRegistry().WriteCsv(os);
      if (!os.good()) return Status::IoError("failed writing " + path);
      std::cout << "Metrics written to " << path << "\n";
    }
    return Status::Ok();
  };

  // Observability outputs, out-of-core accounting, and the peak-RSS
  // gate; every successful exit path funnels through here.
  auto finish_run = [&]() -> Status {
    if (Status s = write_observability_outputs(); !s.ok()) return s;
    if (store.mapped()) {
      const MmapGraph& mapped = *store.mmap_graph();
      std::cout << "\nMapped graph: " << mapped.mapped_bytes() / kMiB
                << " MiB on disk vs "
                << DualCsrBytes(graph.num_vertices(), graph.num_edges()) /
                       kMiB
                << " MiB in-memory dual-CSR; governor drops: "
                << mapped.mapping()->governor_drops() << "\n";
    }
    const uint64_t peak = PeakRssBytes();
    const uint64_t max_rss_mb =
        static_cast<uint64_t>(flags.GetInt("max_rss_mb"));
    if (max_rss_mb > 0 || store.mapped()) {
      std::cout << "Peak RSS: " << peak / kMiB << " MiB\n";
    }
    if (max_rss_mb > 0 && peak > max_rss_mb * kMiB) {
      return Status::Internal("peak RSS " + std::to_string(peak / kMiB) +
                              " MiB exceeded --max_rss_mb=" +
                              std::to_string(max_rss_mb));
    }
    return Status::Ok();
  };

  // ---- Evaluate an existing plan -------------------------------------------
  if (!flags.GetString("load_plan").empty()) {
    Result<PartitionPlan> loaded_plan = LoadPlan(flags.GetString("load_plan"));
    if (!loaded_plan.ok()) return Fail(loaded_plan.status());
    // Saved plans are in original input ids; map onto the working ids.
    Result<PartitionPlan> plan =
        PlanToWorkingIds(std::move(*loaded_plan), ids, graph);
    if (!plan.ok()) return Fail(plan.status());
    PartitionConfig config;
    config.model = plan->model;
    config.theta = plan->theta;
    config.workload = *workload;
    PartitionState state(&graph, &*topology, &locations, &input_sizes,
                         config);
    if (Status s = ApplyPlan(*plan, &state); !s.ok()) return Fail(s);
    std::cout << "Loaded plan: " << MakeReport(state).ToString() << "\n";
    PrintPerDcTable(state, std::cout);
    if (!flags.GetString("net_schedule").empty()) {
      if (Status s = ReplaySchedule(flags.GetString("net_schedule"),
                                    *topology, &state, std::cout);
          !s.ok()) {
        return Fail(s);
      }
    }
    if (Status s = finish_run(); !s.ok()) return Fail(s);
    return 0;
  }

  // ---- RLCut with checkpoint/resume ----------------------------------------
  // The registry API has no trainer-session surface, so the checkpoint
  // flags drive the trainer directly (same setup as RunRLCut).
  const bool wants_replica = !flags.GetString("replica_endpoint").empty();
  const bool wants_checkpointing = !flags.GetString("checkpoint_out").empty() ||
                                   !flags.GetString("resume_from").empty() ||
                                   flags.GetInt("stop_after_step") >= 0 ||
                                   flags.GetInt("checkpoint_every") > 0 ||
                                   wants_replica;
  if (wants_checkpointing) {
    if (flags.GetString("method") != "RLCut") {
      return Fail(Status::InvalidArgument(
          "--checkpoint_out/--resume_from/--stop_after_step/"
          "--checkpoint_every/--replica_endpoint require --method=RLCut"));
    }
    if (flags.GetInt("checkpoint_every") > 0 &&
        flags.GetString("checkpoint_out").empty()) {
      return Fail(Status::InvalidArgument(
          "--checkpoint_every requires --checkpoint_out"));
    }
    RLCutOptions rl_options;
    rl_options.t_opt_seconds = flags.GetDouble("t_opt");
    rl_options.budget = ctx.budget;
    rl_options.seed = ctx.seed;
    rl_options.num_shards = static_cast<int>(flags.GetInt("shards"));
    rl_options.checkpoint_every_steps =
        static_cast<int>(flags.GetInt("checkpoint_every"));
    rl_options.checkpoint_path = flags.GetString("checkpoint_out");

    PartitionConfig config;
    config.model = ComputeModel::kHybridCut;
    config.theta = ctx.theta;
    config.workload = *workload;
    PartitionState state(&graph, &*topology, &locations, &input_sizes,
                         config);
    state.ResetDerived(locations);  // natural partitioning

    // Flag-sourced options go through the validating factory so a bad
    // flag exits with a Status instead of crashing the process.
    Result<std::unique_ptr<RLCutTrainer>> trainer_or =
        RLCutTrainer::Create(rl_options);
    if (!trainer_or.ok()) return Fail(trainer_or.status());
    RLCutTrainer& trainer = **trainer_or;
    AutomatonPool pool(graph.num_vertices(), topology->num_dcs(), rl_options);
    TrainerSession session;
    if (!flags.GetString("resume_from").empty()) {
      Result<LoadedCheckpoint> checkpoint =
          LoadTrainerCheckpointWithFallback(flags.GetString("resume_from"));
      if (!checkpoint.ok()) return Fail(checkpoint.status());
      if (checkpoint->used_fallback) {
        std::cout << "Primary checkpoint unusable ("
                  << checkpoint->primary_error
                  << "); resuming from last-good " << checkpoint->loaded_from
                  << "\n";
      }
      if (Status s = RestoreCheckpoint(checkpoint->checkpoint, &state, &pool,
                                       &session);
          !s.ok()) {
        return Fail(s);
      }
      if (Status s = trainer.ValidateResume(session); !s.ok()) {
        return Fail(s);
      }
      std::cout << "Resumed from " << checkpoint->loaded_from << " at step "
                << session.next_step << "\n";
    }
    session.stop_after_step = static_cast<int>(flags.GetInt("stop_after_step"));

    // Process-split replica: mirror every shard-sync delta to a
    // rlcut_replica worker. Network failures degrade (training is never
    // perturbed); convergence is checked after the run.
    std::unique_ptr<net::ReplicaClient> replica_client;
    if (wants_replica) {
      net::ReplicaClientOptions client_options;
      client_options.retry.seed = ctx.seed;
      replica_client = std::make_unique<net::ReplicaClient>(
          net::ReplicaClient::TcpConnector(
              flags.GetString("replica_endpoint"),
              client_options.dial_timeout_ms),
          client_options);
      trainer.SetReplicaSink(replica_client.get());
    }

    std::vector<VertexId> all(graph.num_vertices());
    std::iota(all.begin(), all.end(), 0u);
    TrainResult train;
    try {
      train = trainer.Train(&state, std::move(all), &pool, &session);
    } catch (const std::exception& e) {
      return Fail(Status::Internal(std::string("training failed: ") +
                                   e.what()));
    }

    std::cout << "RLCut " << (session.paused ? "paused before step " : "ran ")
              << (session.paused ? std::to_string(session.next_step)
                                 : std::to_string(session.next_step) + " steps")
              << " in " << train.overhead_seconds << " s\n";
    std::cout << MakeReport(state).ToString() << "\n\n";
    PrintPerDcTable(state, std::cout);

    if (replica_client != nullptr) {
      char fingerprint[32];
      std::snprintf(fingerprint, sizeof(fingerprint), "%016llx",
                    static_cast<unsigned long long>(
                        replica_client->mirror_fingerprint()));
      std::cout << "Replica " << flags.GetString("replica_endpoint") << ": "
                << (train.replica_status.ok()
                        ? "synced"
                        : train.replica_status.ToString())
                << (train.replica_degraded ? " (was degraded mid-run)" : "")
                << " at v" << replica_client->mirror_version()
                << " fingerprint " << fingerprint << ", "
                << replica_client->resyncs() << " resyncs, "
                << replica_client->reconnects() << " reconnects\n";
      replica_client->CloseConnection();
      // Fail closed: the caller asked for a converged replica.
      if (!train.replica_status.ok()) return Fail(train.replica_status);
    }

    if (!flags.GetString("checkpoint_out").empty()) {
      const TrainerCheckpoint checkpoint =
          CaptureCheckpoint(state, pool, session, ctx.seed);
      if (Status s = SaveTrainerCheckpointRotating(
              checkpoint, flags.GetString("checkpoint_out"));
          !s.ok()) {
        return Fail(s);
      }
      std::cout << "\nCheckpoint written to "
                << flags.GetString("checkpoint_out") << "\n";
    }
    if (!flags.GetString("save_plan").empty()) {
      Result<PartitionPlan> plan = PlanToOriginalIds(ExtractPlan(state), ids);
      if (!plan.ok()) return Fail(plan.status());
      if (Status s = SavePlan(*plan, flags.GetString("save_plan")); !s.ok()) {
        return Fail(s);
      }
      std::cout << "\nPlan written to " << flags.GetString("save_plan")
                << "\n";
    }
    if (!flags.GetString("net_schedule").empty()) {
      if (Status s = ReplaySchedule(flags.GetString("net_schedule"),
                                    *topology, &state, std::cout);
          !s.ok()) {
        return Fail(s);
      }
    }
    if (Status s = finish_run(); !s.ok()) return Fail(s);
    return 0;
  }

  // ---- Partition -----------------------------------------------------------
  const std::string& method = flags.GetString("method");
  PartitionerOptions options;
  options.t_opt_seconds = flags.GetDouble("t_opt");
  options.num_shards = static_cast<int>(flags.GetInt("shards"));
  Result<std::unique_ptr<Partitioner>> partitioner =
      MakePartitionerByName(method, options);
  if (!partitioner.ok()) return Fail(partitioner.status());

  Result<PartitionOutput> out = Status::Internal("partitioner did not run");
  try {
    out = (*partitioner)->Run(ctx);
  } catch (const std::exception& e) {
    return Fail(
        Status::Internal(std::string("partitioning failed: ") + e.what()));
  }
  if (!out.ok()) return Fail(out.status());
  std::cout << (*partitioner)->name() << " finished in "
            << out->overhead_seconds << " s\n";
  std::cout << MakeReport(out->state).ToString() << "\n\n";
  PrintPerDcTable(out->state, std::cout);

  if (!flags.GetString("save_plan").empty()) {
    Result<PartitionPlan> plan = PlanToOriginalIds(ExtractPlan(out->state), ids);
    if (!plan.ok()) return Fail(plan.status());
    if (Status s = SavePlan(*plan, flags.GetString("save_plan")); !s.ok()) {
      return Fail(s);
    }
    std::cout << "\nPlan written to " << flags.GetString("save_plan")
              << "\n";
  }
  if (!flags.GetString("net_schedule").empty()) {
    if (Status s = ReplaySchedule(flags.GetString("net_schedule"), *topology,
                                  &out->state, std::cout);
        !s.ok()) {
      return Fail(s);
    }
  }
  if (Status s = finish_run(); !s.ok()) return Fail(s);
  return 0;
}
