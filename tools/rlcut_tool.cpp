// rlcut_tool: command-line partitioner. Loads a graph (SNAP edge list or
// a built-in dataset preset), partitions it across a geo-distributed
// topology with RLCut or any baseline, reports the Eq. 1-5 quality
// metrics, and optionally saves/loads the plan, a Chrome-trace JSON of
// the run, and a metrics CSV.
//
// Examples:
//   rlcut_tool --dataset=TW --scale=2000 --method=RLCut --t_opt=5
//   rlcut_tool --input=graph.el --method=Ginger --dcs=4
//   rlcut_tool --dataset=LJ --load_plan=plan.txt        # evaluate a plan
//   rlcut_tool --dataset=LJ --method=RLCut --save_plan=plan.txt
//   rlcut_tool --dataset=TW --method=RLCut --trace_out=trace.json \
//       --metrics_out=metrics.csv   # open trace.json in ui.perfetto.dev

#include <fstream>
#include <iostream>
#include <memory>

#include "baselines/partitioner.h"
#include "cloud/topology.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "graph/datasets.h"
#include "graph/geo.h"
#include "graph/io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/metrics.h"
#include "partition/plan_io.h"

namespace {

using namespace rlcut;

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

std::string KnownMethods() {
  std::string out;
  for (const PartitionerInfo& info : ListPartitioners()) {
    if (!out.empty()) out += ", ";
    out += info.name;
  }
  return out;
}

Result<Topology> MakeTopologyFromFlags(const FlagParser& flags) {
  const int dcs = static_cast<int>(flags.GetInt("dcs"));
  const std::string& het = flags.GetString("heterogeneity");
  Heterogeneity level;
  if (het == "low") {
    level = Heterogeneity::kLow;
  } else if (het == "medium") {
    level = Heterogeneity::kMedium;
  } else if (het == "high") {
    level = Heterogeneity::kHigh;
  } else {
    return Status::InvalidArgument("unknown heterogeneity: " + het);
  }
  if (dcs < 2 || dcs > 8) {
    return Status::InvalidArgument("--dcs must be in [2, 8]");
  }
  return MakeEc2Topology(dcs, level);
}

Result<Workload> MakeWorkloadFromFlags(const FlagParser& flags) {
  const std::string& name = flags.GetString("workload");
  if (name == "PR") return Workload::PageRank();
  if (name == "SSSP") return Workload::Sssp();
  if (name == "SI") return Workload::SubgraphIsomorphism();
  return Status::InvalidArgument("unknown workload: " + name +
                                 " (use PR, SSSP or SI)");
}

void PrintPerDcTable(const PartitionState& state, std::ostream& os) {
  TableWriter table({"DC", "Masters", "Edges"});
  for (int r = 0; r < state.num_dcs(); ++r) {
    table.AddRow({state.topology().dc(r).name, Fmt(state.MasterCount(r)),
                  Fmt(state.EdgeCount(r))});
  }
  table.Print(os);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("input", "", "SNAP edge-list file (overrides --dataset)");
  flags.DefineString("dataset", "LJ", "built-in preset: LJ/OT/UK/IT/TW");
  flags.DefineInt("scale", 2000, "preset down-scale factor");
  flags.DefineString("method", "RLCut",
                     "partitioner name; one of: " + KnownMethods());
  flags.DefineString("workload", "PR", "traffic profile: PR, SSSP or SI");
  flags.DefineInt("dcs", 8, "number of EC2-profile DCs (2-8)");
  flags.DefineString("heterogeneity", "medium", "low, medium or high");
  flags.DefineDouble("budget_fraction", 0.4,
                     "budget as a fraction of the centralized-move cost");
  flags.DefineDouble("t_opt", 0, "RLCut time budget in seconds (0 = off)");
  flags.DefineInt("theta", 0, "hybrid-cut threshold (0 = auto)");
  flags.DefineInt("seed", 1, "random seed");
  flags.DefineString("save_plan", "", "write the computed plan here");
  flags.DefineString("load_plan", "",
                     "evaluate this plan instead of partitioning");
  flags.DefineString("trace_out", "",
                     "write a Chrome-trace JSON of the run here "
                     "(open in ui.perfetto.dev or chrome://tracing)");
  flags.DefineString("metrics_out", "",
                     "write a CSV snapshot of all recorded metrics here");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.Usage(argv[0]);
    return 0;
  }

  // Observability: install the trace recorder before any instrumented
  // work so partitioning, training and evaluation all land in the trace.
  obs::TraceRecorder trace_recorder;
  const bool tracing = !flags.GetString("trace_out").empty();
  if (tracing) obs::SetTraceRecorder(&trace_recorder);
  if (!flags.GetString("metrics_out").empty()) obs::SetDetailedMetrics(true);

  // ---- Problem construction ----------------------------------------------
  Graph graph;
  std::string graph_label;
  if (!flags.GetString("input").empty()) {
    Result<Graph> loaded = LoadEdgeListFile(flags.GetString("input"));
    if (!loaded.ok()) return Fail(loaded.status());
    graph = std::move(*loaded);
    graph_label = flags.GetString("input");
  } else {
    Result<Dataset> dataset = ParseDataset(flags.GetString("dataset"));
    if (!dataset.ok()) return Fail(dataset.status());
    graph = LoadDataset(*dataset,
                        static_cast<uint64_t>(flags.GetInt("scale")),
                        static_cast<uint64_t>(flags.GetInt("seed")));
    graph_label = DatasetName(*dataset) + " @1/" +
                  std::to_string(flags.GetInt("scale"));
  }

  Result<Topology> topology = MakeTopologyFromFlags(flags);
  if (!topology.ok()) return Fail(topology.status());
  Result<Workload> workload = MakeWorkloadFromFlags(flags);
  if (!workload.ok()) return Fail(workload.status());

  GeoLocatorOptions geo;
  geo.num_dcs = topology->num_dcs();
  geo.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  std::vector<DcId> locations = AssignGeoLocations(graph, geo);
  std::vector<double> input_sizes = AssignInputSizes(graph);

  const DcId hub = topology->CheapestUploadDc();
  double centralized = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (locations[v] != hub) {
      centralized += topology->UploadCost(locations[v], input_sizes[v]);
    }
  }

  PartitionerContext ctx;
  ctx.graph = &graph;
  ctx.topology = &*topology;
  ctx.locations = &locations;
  ctx.input_sizes = &input_sizes;
  ctx.workload = *workload;
  ctx.theta = flags.GetInt("theta") > 0
                  ? static_cast<uint32_t>(flags.GetInt("theta"))
                  : PartitionState::AutoTheta(graph);
  ctx.budget = flags.GetDouble("budget_fraction") * centralized;
  ctx.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::cout << "Graph " << graph_label << ": " << graph.num_vertices()
            << " vertices, " << graph.num_edges() << " edges; "
            << topology->num_dcs() << " DCs ("
            << flags.GetString("heterogeneity") << "), theta=" << ctx.theta
            << ", budget=$" << ctx.budget << "\n\n";

  // Writes --trace_out / --metrics_out if requested. Called on every
  // successful exit path; uninstalls the recorder first so no span can
  // record while the buffer is being serialized.
  auto write_observability_outputs = [&]() -> Status {
    if (tracing) {
      obs::SetTraceRecorder(nullptr);
      const std::string& path = flags.GetString("trace_out");
      std::ofstream os(path);
      if (!os) return Status::IoError("cannot open " + path);
      trace_recorder.WriteChromeTrace(os);
      if (!os.good()) return Status::IoError("failed writing " + path);
      std::cout << "\nTrace (" << trace_recorder.size() << " spans) written"
                << " to " << path << "\n";
    }
    if (!flags.GetString("metrics_out").empty()) {
      const std::string& path = flags.GetString("metrics_out");
      std::ofstream os(path);
      if (!os) return Status::IoError("cannot open " + path);
      obs::DefaultRegistry().WriteCsv(os);
      if (!os.good()) return Status::IoError("failed writing " + path);
      std::cout << "Metrics written to " << path << "\n";
    }
    return Status::Ok();
  };

  // ---- Evaluate an existing plan -------------------------------------------
  if (!flags.GetString("load_plan").empty()) {
    Result<PartitionPlan> plan = LoadPlan(flags.GetString("load_plan"));
    if (!plan.ok()) return Fail(plan.status());
    PartitionConfig config;
    config.model = plan->model;
    config.theta = plan->theta;
    config.workload = *workload;
    PartitionState state(&graph, &*topology, &locations, &input_sizes,
                         config);
    if (Status s = ApplyPlan(*plan, &state); !s.ok()) return Fail(s);
    std::cout << "Loaded plan: " << MakeReport(state).ToString() << "\n";
    PrintPerDcTable(state, std::cout);
    if (Status s = write_observability_outputs(); !s.ok()) return Fail(s);
    return 0;
  }

  // ---- Partition -----------------------------------------------------------
  const std::string& method = flags.GetString("method");
  PartitionerOptions options;
  options.t_opt_seconds = flags.GetDouble("t_opt");
  Result<std::unique_ptr<Partitioner>> partitioner =
      MakePartitionerByName(method, options);
  if (!partitioner.ok()) return Fail(partitioner.status());

  Result<PartitionOutput> out = (*partitioner)->Run(ctx);
  if (!out.ok()) return Fail(out.status());
  std::cout << (*partitioner)->name() << " finished in "
            << out->overhead_seconds << " s\n";
  std::cout << MakeReport(out->state).ToString() << "\n\n";
  PrintPerDcTable(out->state, std::cout);

  if (!flags.GetString("save_plan").empty()) {
    const PartitionPlan plan = ExtractPlan(out->state);
    if (Status s = SavePlan(plan, flags.GetString("save_plan")); !s.ok()) {
      return Fail(s);
    }
    std::cout << "\nPlan written to " << flags.GetString("save_plan")
              << "\n";
  }
  if (Status s = write_observability_outputs(); !s.ok()) return Fail(s);
  return 0;
}
