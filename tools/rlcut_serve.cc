// rlcut_serve: long-running streaming partitioning daemon.
//
// Consumes a high-rate temporal edge stream (the diurnal generator of
// graph/temporal.h standing in for a production feed), applies it to a
// live PartitioningSession in micro-batches, and triggers incremental
// re-optimization on a cadence under a configurable migration budget —
// the serving-path counterpart of the batch rlcut_tool. Every publish
// versions the plan; --plan_out keeps the latest plan on disk and
// --checkpoint makes the whole session crash-restartable.
//
//   rlcut_serve --vertices=8192 --edges=65536 --batch_seconds=600
//   rlcut_serve --method=RLCut --budget_vertices=256 --budget_mb=64
//   rlcut_serve --net_drift=0.3 --checkpoint=/tmp/serve.ckpt
//   rlcut_serve --faults='session.ingest_fail:nth=3,max=2'
//   rlcut_serve --replica_endpoint=127.0.0.1:7070   # + rlcut_replica
//
// Transient ingest/publish failures are retried under the shared
// net::RetryPolicy (bounded attempts, jittered exponential backoff);
// retry pressure is reported in the summary. SIGINT and SIGTERM drain
// cleanly: the current batch finishes, a final plan is published, and
// the summary (sustained edges/sec, p99 micro-batch apply latency) is
// printed. Exits non-zero if no plan was published, or if a replica
// endpoint was attached and did not converge by drain time.

#include <csignal>
#include <cstdio>
#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "baselines/partitioner.h"
#include "cloud/topology.h"
#include "cloud/topology_schedule.h"
#include "common/flags.h"
#include "common/sim_time.h"
#include "common/timer.h"
#include "fault/fault.h"
#include "graph/geo.h"
#include "graph/stream.h"
#include "graph/temporal.h"
#include "net/replica_service.h"
#include "net/retry.h"
#include "obs/metrics.h"
#include "partition/plan_io.h"
#include "rlcut/session.h"

namespace {

volatile std::sig_atomic_t g_interrupted = 0;
// Mirror for the RetryCall cancel hook (std::atomic<bool> is lock-free
// here, so storing from the handler is async-signal-safe).
std::atomic<bool> g_cancel{false};

void HandleStopSignal(int) {
  g_interrupted = 1;
  g_cancel.store(true, std::memory_order_relaxed);
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(q * (values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  rlcut::FlagParser flags;
  flags.DefineInt("vertices", 8192, "vertex-set size (fixed up front)");
  flags.DefineInt("edges", 65536, "total edges in the temporal stream");
  flags.DefineDouble("horizon", 24 * 3600.0,
                     "stream horizon, simulated seconds");
  flags.DefineDouble("batch_seconds", 600.0,
                     "micro-batch window, simulated seconds");
  flags.DefineInt("reopt_every", 3,
                  "re-optimize + publish every N micro-batches");
  flags.DefineInt("budget_vertices", 256,
                  "max vertices moved per publish (0 = unlimited)");
  flags.DefineDouble("budget_mb", 64.0,
                     "max megabytes moved per publish (0 = unlimited)");
  flags.DefineInt("dcs", 4, "data centers");
  flags.DefineInt("seed", 1, "base RNG seed");
  flags.DefineString("method", "RLCut",
                     "partitioner registry name; RLCut serves "
                     "incrementally, other methods re-partition cold");
  flags.DefineInt("max_batches", 0,
                  "stop after N micro-batches (0 = run to the horizon)");
  flags.DefineString("plan_out", "",
                     "keep the latest published plan at this path");
  flags.DefineString("checkpoint", "",
                     "checkpoint the session here after every publish "
                     "(RLCut only)");
  flags.DefineString("faults", "",
                     "fault schedule spec, e.g. "
                     "'session.ingest_fail:prob=0.1' (see rlcut_audit)");
  flags.DefineString("replica_endpoint", "",
                     "ship plan deltas to a rlcut_replica worker at "
                     "host:port (RLCut only; see docs/distributed.md)");
  flags.DefineDouble("net_drift", 0.0,
                     "diurnal bandwidth-drift amplitude (0 disables "
                     "topology events; RLCut only)");
  flags.DefineDouble("t_opt", 0.0,
                     "per-pass wall-clock training budget, seconds");
  flags.DefineBool("quiet", false, "suppress per-publish lines");
  if (rlcut::Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bool quiet = flags.GetBool("quiet");

  rlcut::fault::FaultSchedule schedule;
  const std::string fault_spec = flags.GetString("faults");
  if (!fault_spec.empty()) {
    std::string error;
    if (!rlcut::fault::FaultSchedule::Parse(
            fault_spec, static_cast<uint64_t>(flags.GetInt("seed")),
            &schedule, &error)) {
      std::fprintf(stderr, "bad --faults: %s\n", error.c_str());
      return 2;
    }
    rlcut::fault::Arm(schedule);
  }

  // The stream: a day of diurnal-rate edge arrivals. The first fifth
  // seeds the base graph the session opens over; the rest arrives live.
  rlcut::TemporalStreamOptions stream_options;
  stream_options.num_vertices =
      static_cast<rlcut::VertexId>(flags.GetInt("vertices"));
  stream_options.num_edges = static_cast<uint64_t>(flags.GetInt("edges"));
  stream_options.horizon_seconds = flags.GetDouble("horizon");
  stream_options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const rlcut::TemporalGraph temporal =
      rlcut::GenerateDiurnalStream(stream_options);
  const uint64_t base_count = temporal.edges().size() / 5;
  const rlcut::Graph base_graph = temporal.Prefix(base_count);

  const int num_dcs = static_cast<int>(flags.GetInt("dcs"));
  const rlcut::Topology base_topology =
      rlcut::MakeEc2Topology(num_dcs, rlcut::Heterogeneity::kMedium);
  rlcut::GeoLocatorOptions geo;
  geo.num_dcs = num_dcs;
  geo.seed = stream_options.seed + 101;
  const std::vector<rlcut::DcId> locations =
      rlcut::AssignGeoLocations(base_graph, geo);
  const std::vector<double> sizes = rlcut::AssignInputSizes(base_graph);

  rlcut::PartitionerContext ctx;
  ctx.graph = &base_graph;
  ctx.topology = &base_topology;
  ctx.locations = &locations;
  ctx.input_sizes = &sizes;
  ctx.theta = rlcut::PartitionState::AutoTheta(base_graph);
  ctx.seed = stream_options.seed;

  rlcut::SessionOptions session_options;
  session_options.partitioner.t_opt_seconds = flags.GetDouble("t_opt");
  rlcut::Result<std::unique_ptr<rlcut::PartitioningSession>> opened =
      rlcut::OpenPartitioningSession(flags.GetString("method"), ctx,
                                     session_options);
  if (!opened.ok()) {
    std::fprintf(stderr, "open session: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<rlcut::PartitioningSession> session = std::move(*opened);
  // The incremental extras (topology drift, checkpointing) only exist
  // on the RLCut session; other methods still serve through the same
  // PartitioningSession interface.
  auto* rlcut_session = dynamic_cast<rlcut::RLCutSession*>(session.get());

  const double net_drift = flags.GetDouble("net_drift");
  rlcut::TopologySchedule drift_schedule;
  if (net_drift > 0) {
    if (rlcut_session == nullptr) {
      std::fprintf(stderr,
                   "--net_drift requires --method=RLCut; ignoring\n");
    } else {
      // One simulated second per schedule step; events every 1/8 of a
      // diurnal period.
      const int horizon_steps =
          static_cast<int>(stream_options.horizon_seconds);
      drift_schedule = rlcut::MakeDiurnalDriftSchedule(
          base_topology, horizon_steps / 4, net_drift, horizon_steps);
    }
  }
  const std::string checkpoint_path = flags.GetString("checkpoint");
  if (!checkpoint_path.empty() && rlcut_session == nullptr) {
    std::fprintf(stderr, "--checkpoint requires --method=RLCut\n");
    return 2;
  }

  // Optional process-split replica: every re-optimization's deltas are
  // shipped to a rlcut_replica worker; failures degrade, never stall.
  const std::string replica_endpoint = flags.GetString("replica_endpoint");
  std::unique_ptr<rlcut::net::ReplicaClient> replica_client;
  if (!replica_endpoint.empty()) {
    if (rlcut_session == nullptr) {
      std::fprintf(stderr, "--replica_endpoint requires --method=RLCut\n");
      return 2;
    }
    rlcut::net::ReplicaClientOptions client_options;
    client_options.retry.seed =
        static_cast<uint64_t>(flags.GetInt("seed"));
    replica_client = std::make_unique<rlcut::net::ReplicaClient>(
        rlcut::net::ReplicaClient::TcpConnector(
            replica_endpoint, client_options.dial_timeout_ms),
        client_options);
    rlcut_session->SetReplicaSink(replica_client.get());
  }

  rlcut::MigrationBudget budget = rlcut::MigrationBudget::Unlimited();
  if (flags.GetInt("budget_vertices") > 0) {
    budget.max_vertices = static_cast<uint64_t>(
        flags.GetInt("budget_vertices"));
  }
  if (flags.GetDouble("budget_mb") > 0) {
    budget.max_bytes = flags.GetDouble("budget_mb") * 1e6;
  }

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  const std::string plan_out = flags.GetString("plan_out");
  const int reopt_every =
      std::max<int>(1, static_cast<int>(flags.GetInt("reopt_every")));
  const int64_t max_batches = flags.GetInt("max_batches");

  uint64_t publishes = 0;
  uint64_t edges_ingested = 0;
  uint64_t vertices_migrated = 0;
  uint64_t ingest_errors = 0;
  uint64_t publish_errors = 0;
  std::vector<double> apply_seconds;
  double ingest_wall_seconds = 0;

  // One shared policy for both transient-failure loops (ingest and
  // publish); op ids keep their jitter streams decorrelated.
  rlcut::net::RetryPolicy retry_policy;
  retry_policy.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  uint64_t retry_op_id = 0;

  auto reoptimize_and_publish = [&]() -> bool {
    rlcut::Result<rlcut::ReoptimizeResult> reopt =
        session->MaybeReoptimize(budget);
    if (!reopt.ok()) {
      std::fprintf(stderr, "reoptimize: %s\n",
                   reopt.status().ToString().c_str());
      return false;
    }
    rlcut::Result<rlcut::PublishedPlan> plan(
        rlcut::Status::Internal("never published"));
    rlcut::net::RetryOutcome outcome;
    const rlcut::Status published = rlcut::net::RetryCall(
        retry_policy, ++retry_op_id, "serve.publish",
        [&]() -> rlcut::Status {
          plan = session->PublishPlan();
          return plan.ok() ? rlcut::Status::Ok() : plan.status();
        },
        &g_cancel, &outcome);
    publish_errors += static_cast<uint64_t>(outcome.attempts - 1);
    if (!published.ok()) {
      std::fprintf(stderr, "publish: %s\n", published.ToString().c_str());
      return false;
    }
    ++publishes;
    vertices_migrated += plan->migration.vertices_moved;
    if (!quiet) {
      std::printf("publish v%llu: objective %gs, moved %llu vertices "
                  "(%.2f MB), %llu reverted by budget\n",
                  static_cast<unsigned long long>(plan->version),
                  plan->objective.transfer_seconds,
                  static_cast<unsigned long long>(
                      plan->migration.vertices_moved),
                  plan->migration.bytes_moved / 1e6,
                  static_cast<unsigned long long>(plan->reverted_vertices));
    }
    if (!plan_out.empty()) {
      const rlcut::PartitionState* state = session->live_state();
      if (state != nullptr) {
        if (rlcut::Status saved =
                rlcut::SavePlan(rlcut::ExtractPlan(*state), plan_out);
            !saved.ok()) {
          std::fprintf(stderr, "save plan: %s\n",
                       saved.ToString().c_str());
        }
      }
    }
    if (!checkpoint_path.empty() && rlcut_session != nullptr) {
      if (rlcut::Status saved =
              rlcut_session->SaveCheckpoint(checkpoint_path);
          !saved.ok()) {
        std::fprintf(stderr, "checkpoint: %s\n", saved.ToString().c_str());
      }
    }
    return true;
  };

  // Warm up: train the base graph and publish plan v1 before ingesting.
  if (!reoptimize_and_publish()) return 1;

  rlcut::StreamBuffer buffer;
  const std::vector<rlcut::TimedEdge>& all = temporal.edges();
  const rlcut::SimTime batch_window(flags.GetDouble("batch_seconds"));
  const rlcut::SimTime horizon(stream_options.horizon_seconds);
  rlcut::SimTime watermark =
      base_count < all.size() ? all[base_count].time : horizon;
  uint64_t next_edge = base_count;
  int64_t batches = 0;
  int batches_since_reopt = 0;
  rlcut::WallTimer run_timer;

  while (!g_interrupted && next_edge < all.size() &&
         (max_batches <= 0 || batches < max_batches)) {
    watermark =
        std::min(watermark + batch_window, horizon + rlcut::SimTime(1));
    while (next_edge < all.size() && all[next_edge].time <= watermark) {
      buffer.Push(rlcut::StreamEvent{all[next_edge], next_edge});
      ++next_edge;
    }
    const rlcut::MicroBatch batch = buffer.Cut(watermark);
    rlcut::WallTimer apply_timer;
    rlcut::Result<rlcut::ApplyResult> applied(
        rlcut::Status::Internal("never applied"));
    rlcut::net::RetryOutcome outcome;
    const rlcut::Status ingested = rlcut::net::RetryCall(
        retry_policy, ++retry_op_id, "serve.ingest",
        [&]() -> rlcut::Status {
          applied = session->ApplyDelta(batch);
          return applied.ok() ? rlcut::Status::Ok() : applied.status();
        },
        &g_cancel, &outcome);
    ingest_errors += static_cast<uint64_t>(outcome.attempts - 1);
    if (!ingested.ok()) {
      std::fprintf(stderr, "ingest: %s\n", ingested.ToString().c_str());
      return 1;
    }
    const double elapsed = apply_timer.ElapsedSeconds();
    apply_seconds.push_back(elapsed);
    ingest_wall_seconds += elapsed;
    edges_ingested += applied->edges_applied;
    ++batches;

    if (rlcut_session != nullptr && net_drift > 0 &&
        drift_schedule.ChangedBetween(watermark - batch_window,
                                      watermark)) {
      rlcut::Result<rlcut::TopologyUpdateResult> updated =
          rlcut_session->UpdateTopology(
              drift_schedule.EffectiveAt(watermark));
      if (!updated.ok()) {
        std::fprintf(stderr, "topology update: %s\n",
                     updated.status().ToString().c_str());
        return 1;
      }
      if (!quiet && updated->affected_marked > 0) {
        std::printf("topology drift %.3f marked %llu vertices\n",
                    updated->drift,
                    static_cast<unsigned long long>(
                        updated->affected_marked));
      }
    }

    if (++batches_since_reopt >= reopt_every) {
      batches_since_reopt = 0;
      if (!reoptimize_and_publish()) return 1;
    }
  }

  // Drain: publish whatever the final batches accumulated.
  if (batches_since_reopt > 0 && !reoptimize_and_publish()) return 1;
  rlcut::fault::Disarm();

  const double wall = run_timer.ElapsedSeconds();
  const double sustained =
      ingest_wall_seconds > 0 ? edges_ingested / ingest_wall_seconds : 0;
  std::printf(
      "served %lld micro-batches in %.2fs wall%s: %llu edges ingested "
      "(%.0f edges/sec sustained), %llu publishes, %llu vertices "
      "migrated, p99 apply %.2fms, %llu ingest / %llu publish errors "
      "retried\n",
      static_cast<long long>(batches), wall,
      g_interrupted ? " (interrupted)" : "",
      static_cast<unsigned long long>(edges_ingested), sustained,
      static_cast<unsigned long long>(publishes),
      static_cast<unsigned long long>(vertices_migrated),
      Percentile(apply_seconds, 0.99) * 1e3,
      static_cast<unsigned long long>(ingest_errors),
      static_cast<unsigned long long>(publish_errors));

  // Retry pressure and replica-link health, from the shared registry
  // (RetryCall and ReplicaClient record their counters there).
  for (const rlcut::obs::MetricSample& sample :
       rlcut::obs::DefaultRegistry().Snapshot()) {
    const bool relevant = sample.name.rfind("retry.", 0) == 0 ||
                          sample.name.rfind("net.client.", 0) == 0;
    if (relevant && sample.value > 0) {
      std::printf("metric %s: %.0f\n", sample.name.c_str(), sample.value);
    }
  }
  if (replica_client != nullptr) {
    const rlcut::Status replica_status = rlcut_session->replica_status();
    std::printf(
        "replica %s: %s%s, mirror v%llu, %llu resyncs, %llu reconnects\n",
        replica_endpoint.c_str(),
        replica_status.ok() ? "synced" : replica_status.ToString().c_str(),
        rlcut_session->replica_degraded() ? " (was degraded)" : "",
        static_cast<unsigned long long>(replica_client->mirror_version()),
        static_cast<unsigned long long>(replica_client->resyncs()),
        static_cast<unsigned long long>(replica_client->reconnects()));
    replica_client->CloseConnection();
    // Fail closed: a daemon asked to maintain a replica must not exit
    // clean while the far side is behind.
    if (!replica_status.ok()) return 1;
  }

  const rlcut::StreamBufferStats& buffer_stats = buffer.stats();
  std::printf(
      "stream buffer: %llu accepted, %llu retired, %llu pending, "
      "%llu duplicates dropped, %llu late\n",
      static_cast<unsigned long long>(buffer_stats.accepted),
      static_cast<unsigned long long>(buffer_stats.sequences_retired),
      static_cast<unsigned long long>(buffer_stats.pending),
      static_cast<unsigned long long>(buffer_stats.duplicates_dropped),
      static_cast<unsigned long long>(buffer_stats.late_deferred));
  // Dedup state is bounded by the in-flight window: every accepted
  // sequence id must be retired (shipped in a cut) or still pending. A
  // violation means the buffer is leaking ids — the unbounded-memory
  // failure mode a long-lived daemon cannot tolerate.
  if (buffer_stats.accepted !=
      buffer_stats.sequences_retired + buffer_stats.pending) {
    std::fprintf(stderr,
                 "stream buffer leaked dedup state: accepted %llu != "
                 "retired %llu + pending %llu\n",
                 static_cast<unsigned long long>(buffer_stats.accepted),
                 static_cast<unsigned long long>(
                     buffer_stats.sequences_retired),
                 static_cast<unsigned long long>(buffer_stats.pending));
    return 1;
  }
  return publishes > 0 ? 0 : 1;
}
