// Standalone correctness audit driver: runs the differential oracle,
// replays the loader corpora, fuzzes the loaders, and (on request) runs
// the chaos lane — full training sessions under randomized fault
// schedules — exiting non-zero on any failure. CI runs it as the
// fuzz-smoke and chaos-smoke jobs; developers run it directly when
// touching the incremental evaluator, a loader, or the fault paths:
//
//   rlcut_audit --mode=oracle --sequences=1024 --moves=32
//   rlcut_audit --mode=fuzz --fuzz_iters=5000 --seed=3
//   rlcut_audit --mode=chaos --sessions=100
//   rlcut_audit --mode=net --sessions=100
//   rlcut_audit --mode=stream --sessions=100
//   rlcut_audit --mode=shard --instances=24
//   rlcut_audit --mode=renumber --instances=24
//   rlcut_audit            # everything except chaos/net/stream/shard,
//                          # moderate sizes

#include <cstdio>
#include <string>
#include <vector>

#include "check/chaos.h"
#include "check/differential_oracle.h"
#include "check/fuzz.h"
#include "check/net_oracle.h"
#include "check/renumber_oracle.h"
#include "check/shard_oracle.h"
#include "check/stream_oracle.h"
#include "common/flags.h"

namespace {

const rlcut::check::LoaderKind kLoaders[] = {
    rlcut::check::LoaderKind::kCheckpoint,
    rlcut::check::LoaderKind::kPlan,
    rlcut::check::LoaderKind::kNetSchedule,
    rlcut::check::LoaderKind::kRlgGraph,
    rlcut::check::LoaderKind::kNetFrame,
};

int ReportFailures(const std::vector<std::string>& failures) {
  for (const std::string& f : failures) {
    std::fprintf(stderr, "FAIL: %s\n", f.c_str());
  }
  return failures.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  rlcut::FlagParser flags;
  flags.DefineString(
      "mode", "all",
      "what to audit: all | oracle | corpus | fuzz | renumber | chaos | "
      "net | stream | shard (chaos trains under fault injection, net "
      "drives replica sync through the transport under network chaos, "
      "stream drives full streaming sessions, shard replays the "
      "sharded-trainer determinism lanes; chaos/net/stream/shard are "
      "not part of all)");
  flags.DefineInt("sequences", 64, "oracle: randomized move sequences");
  flags.DefineInt("moves", 64, "oracle: moves per sequence");
  flags.DefineInt("vertices", 96, "oracle: vertices per instance");
  flags.DefineInt("edges", 384, "oracle: edges per instance");
  flags.DefineInt("dcs", 4, "oracle: data centers");
  flags.DefineInt("fuzz_iters", 600, "fuzz: mutated inputs per loader");
  flags.DefineInt("sessions", 16, "chaos: randomized training sessions");
  flags.DefineInt("instances", 6,
                  "shard / renumber: problem instances per lane");
  flags.DefineInt("seed", 1, "base RNG seed");
  if (rlcut::Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const std::string mode = flags.GetString("mode");
  if (mode != "all" && mode != "oracle" && mode != "corpus" &&
      mode != "fuzz" && mode != "renumber" && mode != "chaos" &&
      mode != "net" && mode != "stream" && mode != "shard") {
    std::fprintf(stderr, "unknown --mode=%s\n", mode.c_str());
    return 2;
  }

  int rc = 0;
  if (mode == "all" || mode == "oracle") {
    rlcut::check::OracleOptions options;
    options.num_sequences = static_cast<int>(flags.GetInt("sequences"));
    options.moves_per_sequence = static_cast<int>(flags.GetInt("moves"));
    options.num_vertices =
        static_cast<rlcut::VertexId>(flags.GetInt("vertices"));
    options.num_edges = static_cast<uint64_t>(flags.GetInt("edges"));
    options.num_dcs = static_cast<int>(flags.GetInt("dcs"));
    options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    const rlcut::check::OracleReport report =
        rlcut::check::RunDifferentialOracle(options);
    std::printf("%s\n", report.Summary().c_str());
    rc |= ReportFailures(report.failures);
  }
  if (mode == "all" || mode == "corpus") {
    for (rlcut::check::LoaderKind kind : kLoaders) {
      const rlcut::check::FuzzReport report =
          rlcut::check::ReplayCorpus(kind);
      std::printf("corpus %s: %s\n", rlcut::check::LoaderName(kind),
                  report.Summary().c_str());
      rc |= ReportFailures(report.failures);
    }
  }
  if (mode == "all" || mode == "fuzz") {
    const int iters = static_cast<int>(flags.GetInt("fuzz_iters"));
    const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
    for (rlcut::check::LoaderKind kind : kLoaders) {
      const rlcut::check::FuzzReport report =
          rlcut::check::RunLoaderFuzz(kind, iters, seed);
      std::printf("fuzz %s: %s\n", rlcut::check::LoaderName(kind),
                  report.Summary().c_str());
      rc |= ReportFailures(report.failures);
    }
  }
  if (mode == "all" || mode == "renumber") {
    rlcut::check::RenumberOracleOptions options;
    options.num_instances = static_cast<int>(flags.GetInt("instances"));
    options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    const rlcut::check::RenumberOracleReport report =
        rlcut::check::RunRenumberOracle(options);
    std::printf("%s\n", report.Summary().c_str());
    rc |= ReportFailures(report.failures);
  }
  if (mode == "chaos") {
    rlcut::check::ChaosOptions options;
    options.num_sessions = static_cast<int>(flags.GetInt("sessions"));
    options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    const rlcut::check::ChaosReport report =
        rlcut::check::RunChaos(options);
    std::printf("%s\n", report.Summary().c_str());
    rc |= ReportFailures(report.failures);
  }
  if (mode == "net") {
    rlcut::check::NetOracleOptions options;
    options.num_sessions = static_cast<int>(flags.GetInt("sessions"));
    options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    const rlcut::check::NetOracleReport report =
        rlcut::check::RunNetOracle(options);
    std::printf("%s\n", report.Summary().c_str());
    rc |= ReportFailures(report.failures);
  }
  if (mode == "shard") {
    rlcut::check::ShardOracleOptions options;
    options.num_instances = static_cast<int>(flags.GetInt("instances"));
    options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    const rlcut::check::ShardOracleReport report =
        rlcut::check::RunShardOracle(options);
    std::printf("%s\n", report.Summary().c_str());
    rc |= ReportFailures(report.failures);
  }
  if (mode == "stream") {
    rlcut::check::StreamOracleOptions options;
    options.num_sessions = static_cast<int>(flags.GetInt("sessions"));
    options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    const rlcut::check::StreamOracleReport report =
        rlcut::check::RunStreamOracle(options);
    std::printf("%s\n", report.Summary().c_str());
    rc |= ReportFailures(report.failures);
  }
  return rc;
}
